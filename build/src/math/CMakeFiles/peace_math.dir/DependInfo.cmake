
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bigint.cpp" "src/math/CMakeFiles/peace_math.dir/bigint.cpp.o" "gcc" "src/math/CMakeFiles/peace_math.dir/bigint.cpp.o.d"
  "/root/repo/src/math/fp.cpp" "src/math/CMakeFiles/peace_math.dir/fp.cpp.o" "gcc" "src/math/CMakeFiles/peace_math.dir/fp.cpp.o.d"
  "/root/repo/src/math/fp12.cpp" "src/math/CMakeFiles/peace_math.dir/fp12.cpp.o" "gcc" "src/math/CMakeFiles/peace_math.dir/fp12.cpp.o.d"
  "/root/repo/src/math/fp2.cpp" "src/math/CMakeFiles/peace_math.dir/fp2.cpp.o" "gcc" "src/math/CMakeFiles/peace_math.dir/fp2.cpp.o.d"
  "/root/repo/src/math/u256.cpp" "src/math/CMakeFiles/peace_math.dir/u256.cpp.o" "gcc" "src/math/CMakeFiles/peace_math.dir/u256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/peace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
