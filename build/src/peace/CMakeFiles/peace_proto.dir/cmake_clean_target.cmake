file(REMOVE_RECURSE
  "libpeace_proto.a"
)
