# Empty compiler generated dependencies file for peace_proto.
# This may be replaced when dependencies are built.
