file(REMOVE_RECURSE
  "CMakeFiles/peace_proto.dir/entities.cpp.o"
  "CMakeFiles/peace_proto.dir/entities.cpp.o.d"
  "CMakeFiles/peace_proto.dir/messages.cpp.o"
  "CMakeFiles/peace_proto.dir/messages.cpp.o.d"
  "CMakeFiles/peace_proto.dir/puzzle.cpp.o"
  "CMakeFiles/peace_proto.dir/puzzle.cpp.o.d"
  "CMakeFiles/peace_proto.dir/router.cpp.o"
  "CMakeFiles/peace_proto.dir/router.cpp.o.d"
  "CMakeFiles/peace_proto.dir/session.cpp.o"
  "CMakeFiles/peace_proto.dir/session.cpp.o.d"
  "CMakeFiles/peace_proto.dir/user.cpp.o"
  "CMakeFiles/peace_proto.dir/user.cpp.o.d"
  "libpeace_proto.a"
  "libpeace_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
