# Empty dependencies file for peace_mesh.
# This may be replaced when dependencies are built.
