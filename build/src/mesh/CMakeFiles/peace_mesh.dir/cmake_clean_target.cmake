file(REMOVE_RECURSE
  "libpeace_mesh.a"
)
