file(REMOVE_RECURSE
  "CMakeFiles/peace_mesh.dir/adversary.cpp.o"
  "CMakeFiles/peace_mesh.dir/adversary.cpp.o.d"
  "CMakeFiles/peace_mesh.dir/network.cpp.o"
  "CMakeFiles/peace_mesh.dir/network.cpp.o.d"
  "CMakeFiles/peace_mesh.dir/simulator.cpp.o"
  "CMakeFiles/peace_mesh.dir/simulator.cpp.o.d"
  "libpeace_mesh.a"
  "libpeace_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
