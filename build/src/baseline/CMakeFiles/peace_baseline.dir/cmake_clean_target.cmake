file(REMOVE_RECURSE
  "libpeace_baseline.a"
)
