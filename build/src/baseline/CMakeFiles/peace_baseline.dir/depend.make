# Empty dependencies file for peace_baseline.
# This may be replaced when dependencies are built.
