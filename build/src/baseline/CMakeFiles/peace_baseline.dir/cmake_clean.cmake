file(REMOVE_RECURSE
  "CMakeFiles/peace_baseline.dir/blind_sig.cpp.o"
  "CMakeFiles/peace_baseline.dir/blind_sig.cpp.o.d"
  "CMakeFiles/peace_baseline.dir/plain_auth.cpp.o"
  "CMakeFiles/peace_baseline.dir/plain_auth.cpp.o.d"
  "CMakeFiles/peace_baseline.dir/ring_sig.cpp.o"
  "CMakeFiles/peace_baseline.dir/ring_sig.cpp.o.d"
  "CMakeFiles/peace_baseline.dir/rsa.cpp.o"
  "CMakeFiles/peace_baseline.dir/rsa.cpp.o.d"
  "libpeace_baseline.a"
  "libpeace_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
