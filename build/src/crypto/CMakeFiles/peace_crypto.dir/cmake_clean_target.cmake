file(REMOVE_RECURSE
  "libpeace_crypto.a"
)
