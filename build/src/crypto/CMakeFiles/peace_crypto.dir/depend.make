# Empty dependencies file for peace_crypto.
# This may be replaced when dependencies are built.
