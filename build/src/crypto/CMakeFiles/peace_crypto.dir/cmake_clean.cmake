file(REMOVE_RECURSE
  "CMakeFiles/peace_crypto.dir/aead.cpp.o"
  "CMakeFiles/peace_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/aes.cpp.o"
  "CMakeFiles/peace_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/peace_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/drbg.cpp.o"
  "CMakeFiles/peace_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/gcm.cpp.o"
  "CMakeFiles/peace_crypto.dir/gcm.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/hmac.cpp.o"
  "CMakeFiles/peace_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/peace_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/peace_crypto.dir/sha256.cpp.o"
  "CMakeFiles/peace_crypto.dir/sha256.cpp.o.d"
  "libpeace_crypto.a"
  "libpeace_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
