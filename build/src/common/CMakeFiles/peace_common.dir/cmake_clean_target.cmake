file(REMOVE_RECURSE
  "libpeace_common.a"
)
