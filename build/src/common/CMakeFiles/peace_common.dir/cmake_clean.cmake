file(REMOVE_RECURSE
  "CMakeFiles/peace_common.dir/bytes.cpp.o"
  "CMakeFiles/peace_common.dir/bytes.cpp.o.d"
  "CMakeFiles/peace_common.dir/serde.cpp.o"
  "CMakeFiles/peace_common.dir/serde.cpp.o.d"
  "libpeace_common.a"
  "libpeace_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
