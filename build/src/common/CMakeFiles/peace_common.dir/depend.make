# Empty dependencies file for peace_common.
# This may be replaced when dependencies are built.
