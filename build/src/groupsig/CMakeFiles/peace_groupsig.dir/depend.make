# Empty dependencies file for peace_groupsig.
# This may be replaced when dependencies are built.
