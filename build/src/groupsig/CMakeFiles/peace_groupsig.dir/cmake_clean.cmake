file(REMOVE_RECURSE
  "CMakeFiles/peace_groupsig.dir/groupsig.cpp.o"
  "CMakeFiles/peace_groupsig.dir/groupsig.cpp.o.d"
  "libpeace_groupsig.a"
  "libpeace_groupsig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_groupsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
