file(REMOVE_RECURSE
  "libpeace_groupsig.a"
)
