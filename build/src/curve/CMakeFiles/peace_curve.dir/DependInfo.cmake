
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curve/bn254.cpp" "src/curve/CMakeFiles/peace_curve.dir/bn254.cpp.o" "gcc" "src/curve/CMakeFiles/peace_curve.dir/bn254.cpp.o.d"
  "/root/repo/src/curve/ecdsa.cpp" "src/curve/CMakeFiles/peace_curve.dir/ecdsa.cpp.o" "gcc" "src/curve/CMakeFiles/peace_curve.dir/ecdsa.cpp.o.d"
  "/root/repo/src/curve/hash_to_curve.cpp" "src/curve/CMakeFiles/peace_curve.dir/hash_to_curve.cpp.o" "gcc" "src/curve/CMakeFiles/peace_curve.dir/hash_to_curve.cpp.o.d"
  "/root/repo/src/curve/pairing.cpp" "src/curve/CMakeFiles/peace_curve.dir/pairing.cpp.o" "gcc" "src/curve/CMakeFiles/peace_curve.dir/pairing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/peace_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/peace_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/peace_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
