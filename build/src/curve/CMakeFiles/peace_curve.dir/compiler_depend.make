# Empty compiler generated dependencies file for peace_curve.
# This may be replaced when dependencies are built.
