file(REMOVE_RECURSE
  "libpeace_curve.a"
)
