file(REMOVE_RECURSE
  "CMakeFiles/peace_curve.dir/bn254.cpp.o"
  "CMakeFiles/peace_curve.dir/bn254.cpp.o.d"
  "CMakeFiles/peace_curve.dir/ecdsa.cpp.o"
  "CMakeFiles/peace_curve.dir/ecdsa.cpp.o.d"
  "CMakeFiles/peace_curve.dir/hash_to_curve.cpp.o"
  "CMakeFiles/peace_curve.dir/hash_to_curve.cpp.o.d"
  "CMakeFiles/peace_curve.dir/pairing.cpp.o"
  "CMakeFiles/peace_curve.dir/pairing.cpp.o.d"
  "libpeace_curve.a"
  "libpeace_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peace_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
