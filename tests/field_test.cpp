// Field axioms and Montgomery correctness for Fp and Fr, cross-checked
// against BigInt arithmetic as an independent oracle.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "curve/bn254.hpp"
#include "curve/ecdsa.hpp"
#include "math/bigint.hpp"

namespace peace::math {
namespace {

using curve::Bn254;

class FieldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
};

TEST_F(FieldTest, Identity) {
  EXPECT_TRUE(Fp::zero().is_zero());
  EXPECT_EQ(Fp::one() * Fp::one(), Fp::one());
  EXPECT_EQ(Fp::one() + Fp::zero(), Fp::one());
  EXPECT_EQ(Fp::one().to_u256(), U256::one());
}

TEST_F(FieldTest, FromU256RejectsOutOfRange) {
  EXPECT_THROW(Fp::from_u256(Fp::modulus()), Error);
  EXPECT_NO_THROW(Fp::from_u256(U256::zero()));
}

TEST_F(FieldTest, ReInitWithDifferentModulusRejected) {
  EXPECT_THROW(Fp::init(U256(101)), Error);
  EXPECT_NO_THROW(Fp::init(Bn254::get().p));
}

TEST_F(FieldTest, AddMatchesBigInt) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-add");
  const BigInt p = BigInt::from_u256(Fp::modulus());
  for (int i = 0; i < 50; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    const Fp b = Fp::from_bytes_reduce(rng.bytes(32));
    const BigInt expect =
        (BigInt::from_u256(a.to_u256()) + BigInt::from_u256(b.to_u256())) % p;
    EXPECT_EQ((a + b).to_u256(), expect.to_u256());
  }
}

TEST_F(FieldTest, MulMatchesBigInt) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-mul");
  const BigInt p = BigInt::from_u256(Fp::modulus());
  for (int i = 0; i < 50; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    const Fp b = Fp::from_bytes_reduce(rng.bytes(32));
    const BigInt expect =
        (BigInt::from_u256(a.to_u256()) * BigInt::from_u256(b.to_u256())) % p;
    EXPECT_EQ((a * b).to_u256(), expect.to_u256());
  }
}

TEST_F(FieldTest, SubNegation) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-sub");
  for (int i = 0; i < 20; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    const Fp b = Fp::from_bytes_reduce(rng.bytes(32));
    EXPECT_EQ(a - b, a + (-b));
    EXPECT_TRUE((a - a).is_zero());
    EXPECT_EQ(-(-a), a);
  }
  EXPECT_EQ(-Fp::zero(), Fp::zero());
}

TEST_F(FieldTest, InverseRoundTrip) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-inv");
  for (int i = 0; i < 20; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fp::one());
  }
  EXPECT_THROW(Fp::zero().inverse(), Error);
}

TEST_F(FieldTest, FastInverseMatchesFermat) {
  // The binary-eGCD inverse must agree with the independent Fermat path.
  crypto::Drbg rng = crypto::Drbg::from_string("field-inv-x");
  for (int i = 0; i < 50; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    if (a.is_zero()) continue;
    EXPECT_EQ(a.inverse(), a.inverse_fermat());
  }
  EXPECT_EQ(Fp::one().inverse(), Fp::one());
  // Small values and edge values.
  for (std::uint64_t v : {2ull, 3ull, 0xffffffffffffffffull}) {
    const Fp a = Fp::from_u64(v);
    EXPECT_EQ(a.inverse(), a.inverse_fermat()) << v;
  }
  const Fp pm1 = -Fp::one();
  EXPECT_EQ(pm1.inverse(), pm1);  // (-1)^-1 = -1
}

TEST_F(FieldTest, ModInverseOddRejectsBadInput) {
  EXPECT_THROW(mod_inverse_odd(U256::zero(), U256(7)), Error);
  EXPECT_THROW(mod_inverse_odd(U256(3), U256(8)), Error);   // even modulus
  EXPECT_THROW(mod_inverse_odd(U256(3), U256(9)), Error);   // not coprime
  EXPECT_EQ(mod_inverse_odd(U256(3), U256(7)), U256(5));    // 3*5 = 15 = 1 mod 7
}

TEST_F(FieldTest, PowMatchesBigInt) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-pow");
  const BigInt p = BigInt::from_u256(Fp::modulus());
  for (int i = 0; i < 10; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    const U256 e = U256::from_bytes(rng.bytes(8));
    const BigInt expect = BigInt::mod_pow(BigInt::from_u256(a.to_u256()),
                                          BigInt::from_u256(e), p);
    EXPECT_EQ(a.pow(e).to_u256(), expect.to_u256());
  }
}

TEST_F(FieldTest, PowEdgeCases) {
  const Fp a = Fp::from_u64(12345);
  EXPECT_EQ(a.pow(U256::zero()), Fp::one());
  EXPECT_EQ(a.pow(U256::one()), a);
  EXPECT_EQ(Fp::zero().pow(U256(5)), Fp::zero());
}

TEST_F(FieldTest, FermatLittleTheorem) {
  const Fp a = Fp::from_u64(987654321);
  U256 pm1;
  sub_borrow(pm1, Fp::modulus(), U256::one());
  EXPECT_EQ(a.pow(pm1), Fp::one());
}

TEST_F(FieldTest, SqrtOfSquares) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-sqrt");
  for (int i = 0; i < 20; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    const Fp sq = a.square();
    Fp root;
    ASSERT_TRUE(sq.sqrt(root));
    EXPECT_TRUE(root == a || root == -a);
  }
}

TEST_F(FieldTest, SqrtOfNonResidueFails) {
  // -1 is a non-residue mod p when p = 3 (mod 4).
  Fp root;
  EXPECT_FALSE((-Fp::one()).sqrt(root));
}

TEST_F(FieldTest, FrDistinctModulus) {
  EXPECT_FALSE(Fr::modulus() == Fp::modulus());
  const Fr a = Fr::from_u64(42);
  EXPECT_EQ((a * a.inverse()), Fr::one());
}

TEST_F(FieldTest, FromBytesReduceConsistent) {
  // Reducing p itself gives zero; p+1 gives one.
  const Bytes pb = Fp::modulus().to_bytes();
  EXPECT_TRUE(Fp::from_bytes_reduce(pb).is_zero());
  U256 p1;
  add_carry(p1, Fp::modulus(), U256::one());
  EXPECT_EQ(Fp::from_bytes_reduce(p1.to_bytes()), Fp::one());
}

TEST_F(FieldTest, SerializationRoundTrip) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-serde");
  for (int i = 0; i < 20; ++i) {
    const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
    EXPECT_EQ(Fp::from_u256(U256::from_bytes(a.to_bytes())), a);
  }
}

// Associativity/commutativity/distributivity over random triples.
class FieldAxioms : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
};

TEST_P(FieldAxioms, RingLaws) {
  crypto::Drbg rng = crypto::Drbg::from_string("field-axioms", GetParam());
  const Fp a = Fp::from_bytes_reduce(rng.bytes(32));
  const Fp b = Fp::from_bytes_reduce(rng.bytes(32));
  const Fp c = Fp::from_bytes_reduce(rng.bytes(32));
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a.square(), a * a);
  EXPECT_EQ(a.dbl(), a + a);
}

INSTANTIATE_TEST_SUITE_P(Random, FieldAxioms, ::testing::Range(0, 25));

}  // namespace
}  // namespace peace::math
