// The PEACE group-signature variation: correctness, soundness against
// tampering, revocation (Eq.3), exculpability structure, the epoch-based
// O(1) revocation check, and the operation counts of Sec. V.C.
#include "groupsig/groupsig.hpp"

#include <gtest/gtest.h>

#include "curve/ecdsa.hpp"

namespace peace::groupsig {
namespace {

class GroupSigTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  GroupSigTest()
      : rng_(crypto::Drbg::from_string("groupsig-test")),
        issuer_(Issuer::create(rng_)),
        grp_a_(issuer_.new_group_secret(rng_)),
        grp_b_(issuer_.new_group_secret(rng_)),
        alice_(issuer_.issue(grp_a_, rng_)),
        bob_(issuer_.issue(grp_a_, rng_)),
        carol_(issuer_.issue(grp_b_, rng_)) {}

  crypto::Drbg rng_;
  Issuer issuer_;
  Fr grp_a_, grp_b_;
  MemberKey alice_, bob_, carol_;
};

TEST_F(GroupSigTest, IssuedKeysAreValid) {
  EXPECT_TRUE(alice_.is_valid(issuer_.gpk()));
  EXPECT_TRUE(bob_.is_valid(issuer_.gpk()));
  EXPECT_TRUE(carol_.is_valid(issuer_.gpk()));
  // Same group secret, distinct member secrets and credentials.
  EXPECT_EQ(alice_.grp, bob_.grp);
  EXPECT_FALSE(alice_.x == bob_.x);
  EXPECT_NE(alice_.a, bob_.a);
}

TEST_F(GroupSigTest, InvalidKeyDetected) {
  MemberKey forged = alice_;
  forged.x = forged.x + Fr::one();
  EXPECT_FALSE(forged.is_valid(issuer_.gpk()));
}

TEST_F(GroupSigTest, SignVerifyRoundTrip) {
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("msg"), rng_);
  EXPECT_TRUE(verify_proof(issuer_.gpk(), as_bytes("msg"), sig));
  EXPECT_TRUE(verify(issuer_.gpk(), as_bytes("msg"), sig, {}));
}

TEST_F(GroupSigTest, AllMembersCanSign) {
  for (const MemberKey* key : {&alice_, &bob_, &carol_}) {
    const Signature sig = sign(issuer_.gpk(), *key, as_bytes("m"), rng_);
    EXPECT_TRUE(verify(issuer_.gpk(), as_bytes("m"), sig, {}));
  }
}

TEST_F(GroupSigTest, WrongMessageRejected) {
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("msg"), rng_);
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("other"), sig));
}

TEST_F(GroupSigTest, WrongGroupKeyRejected) {
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("msg"), rng_);
  const Issuer other = Issuer::create(rng_);
  EXPECT_FALSE(verify_proof(other.gpk(), as_bytes("msg"), sig));
}

TEST_F(GroupSigTest, OutsiderCannotForge) {
  // A random "member key" not issued under gamma fails verification.
  MemberKey outsider;
  outsider.a = curve::Bn254::get().g1_gen * curve::random_fr(rng_);
  outsider.grp = curve::random_fr(rng_);
  outsider.x = curve::random_fr(rng_);
  EXPECT_FALSE(outsider.is_valid(issuer_.gpk()));
  const Signature sig = sign(issuer_.gpk(), outsider, as_bytes("m"), rng_);
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), sig));
}

TEST_F(GroupSigTest, EveryFieldTamperRejected) {
  const Signature good = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  const G1 bump1 = curve::Bn254::get().g1_gen;
  const G2 bump2 = curve::Bn254::get().g2_gen;

  Signature s = good;
  s.nonce = s.nonce + Fr::one();
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.t1 = s.t1 + bump1;
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.t2 = s.t2 + bump1;
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.t_hat = s.t_hat + bump2;
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.r1 = s.r1 + bump1;
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.r2 = s.r2 * curve::pairing(bump1, bump2);
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.r3 = s.r3 + bump1;
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.r4 = s.r4 + bump2;
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.s_alpha = s.s_alpha + Fr::one();
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.s_x = s.s_x + Fr::one();
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
  s = good;
  s.s_delta = s.s_delta + Fr::one();
  EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), s));
}

TEST_F(GroupSigTest, SignaturesAreRandomized) {
  const Signature s1 = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  const Signature s2 = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  EXPECT_FALSE(s1 == s2);
  EXPECT_NE(s1.t1, s2.t1);
  EXPECT_NE(s1.t2, s2.t2);
}

TEST_F(GroupSigTest, RevocationTokenMatchesOwnSigner) {
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  EXPECT_TRUE(matches_token(issuer_.gpk(), as_bytes("m"), sig, {alice_.a}));
  EXPECT_FALSE(matches_token(issuer_.gpk(), as_bytes("m"), sig, {bob_.a}));
  EXPECT_FALSE(matches_token(issuer_.gpk(), as_bytes("m"), sig, {carol_.a}));
}

TEST_F(GroupSigTest, VerifyRejectsRevokedSigner) {
  const std::vector<RevocationToken> url = {{bob_.a}};
  const Signature by_alice = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  const Signature by_bob = sign(issuer_.gpk(), bob_, as_bytes("m"), rng_);
  EXPECT_TRUE(verify(issuer_.gpk(), as_bytes("m"), by_alice, url));
  EXPECT_FALSE(verify(issuer_.gpk(), as_bytes("m"), by_bob, url));
}

TEST_F(GroupSigTest, RevocationScansWholeList) {
  std::vector<RevocationToken> url;
  for (int i = 0; i < 8; ++i)
    url.push_back({issuer_.issue(grp_a_, rng_).a});
  url.push_back({alice_.a});  // victim at the end of the list
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  EXPECT_FALSE(verify(issuer_.gpk(), as_bytes("m"), sig, url));
}

TEST_F(GroupSigTest, PreparedVerifyMatchesPlain) {
  // The precomputed-pairing hot path must agree with the straight-line
  // reference on accepts AND rejects: valid signatures, tampered ones, and
  // wrong messages.
  const PreparedGroupPublicKey pgpk(issuer_.gpk());
  for (int i = 0; i < 4; ++i) {
    const Bytes msg = to_bytes("prepared-msg-" + std::to_string(i));
    const Signature sig = sign(issuer_.gpk(), alice_, msg, rng_);
    EXPECT_TRUE(verify_proof(issuer_.gpk(), msg, sig));
    EXPECT_TRUE(verify_proof(pgpk, msg, sig));
    EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("other"), sig));
    EXPECT_FALSE(verify_proof(pgpk, as_bytes("other"), sig));
    Signature bad = sig;
    bad.s_x = bad.s_x + Fr::one();
    EXPECT_FALSE(verify_proof(issuer_.gpk(), msg, bad));
    EXPECT_FALSE(verify_proof(pgpk, msg, bad));
  }
}

TEST_F(GroupSigTest, PreparedVerifyWithUrlMatchesPlain) {
  // Full verify (proof + URL scan), prepared vs plain, including the
  // operation counters the paper's cost analysis is checked against.
  const PreparedGroupPublicKey pgpk(issuer_.gpk());
  const std::vector<RevocationToken> url = {{bob_.a}, {carol_.a}};
  const Signature by_alice = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  const Signature by_bob = sign(issuer_.gpk(), bob_, as_bytes("m"), rng_);
  OpCounters plain_ops, prep_ops;
  EXPECT_TRUE(verify(issuer_.gpk(), as_bytes("m"), by_alice, url, &plain_ops));
  EXPECT_TRUE(verify(pgpk, as_bytes("m"), by_alice, url, &prep_ops));
  EXPECT_EQ(plain_ops.pairings, prep_ops.pairings);
  EXPECT_EQ(plain_ops.g1_exp, prep_ops.g1_exp);
  EXPECT_EQ(plain_ops.g2_exp, prep_ops.g2_exp);
  EXPECT_FALSE(verify(issuer_.gpk(), as_bytes("m"), by_bob, url));
  EXPECT_FALSE(verify(pgpk, as_bytes("m"), by_bob, url));
}

TEST_F(GroupSigTest, SerializationRoundTrip) {
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  const Bytes b = sig.to_bytes();
  EXPECT_EQ(b.size(), kSignatureSize);
  EXPECT_EQ(Signature::from_bytes(b), sig);
  EXPECT_THROW(Signature::from_bytes(Bytes(10, 0)), Error);
  Bytes tampered = b;
  tampered[20] ^= 0xff;
  // Either parsing fails (invalid point) or verification fails.
  try {
    const Signature bad = Signature::from_bytes(tampered);
    EXPECT_FALSE(verify_proof(issuer_.gpk(), as_bytes("m"), bad));
  } catch (const Error&) {
  }
}

TEST_F(GroupSigTest, GpkSerializationRoundTrip) {
  const Bytes b = issuer_.gpk().to_bytes();
  EXPECT_TRUE(GroupPublicKey::from_bytes(b) == issuer_.gpk());
  const RevocationToken t{alice_.a};
  EXPECT_TRUE(RevocationToken::from_bytes(t.to_bytes()) == t);
}

TEST_F(GroupSigTest, DeriveReconstructsIssuedKey) {
  // Models the paper's split distribution: GM holds (grp, x); NO can
  // recompute A from them.
  const MemberKey again = issuer_.derive(alice_.grp, alice_.x);
  EXPECT_EQ(again.a, alice_.a);
}

TEST_F(GroupSigTest, IssuerFromSecretRoundTrip) {
  const Issuer again = Issuer::from_secret(issuer_.gamma());
  EXPECT_TRUE(again.gpk() == issuer_.gpk());
  EXPECT_THROW(Issuer::from_secret(Fr::zero()), Error);
}

TEST_F(GroupSigTest, EpochModeSignVerify) {
  const Signature sig =
      sign(issuer_.gpk(), alice_, as_bytes("m"), rng_, /*epoch=*/42);
  EXPECT_EQ(sig.epoch, 42u);
  EXPECT_TRUE(verify_proof(issuer_.gpk(), as_bytes("m"), sig));
  const EpochRevocationIndex empty_index(issuer_.gpk(), 42, {});
  EXPECT_TRUE(verify_fast(issuer_.gpk(), as_bytes("m"), sig, empty_index));
}

TEST_F(GroupSigTest, EpochIndexCatchesRevoked) {
  const std::vector<RevocationToken> url = {{alice_.a}, {carol_.a}};
  const EpochRevocationIndex index(issuer_.gpk(), 7, url);
  EXPECT_EQ(index.size(), 2u);
  const Signature by_alice =
      sign(issuer_.gpk(), alice_, as_bytes("m"), rng_, 7);
  const Signature by_bob = sign(issuer_.gpk(), bob_, as_bytes("m"), rng_, 7);
  EXPECT_TRUE(index.is_revoked(by_alice));
  EXPECT_FALSE(index.is_revoked(by_bob));
  EXPECT_FALSE(verify_fast(issuer_.gpk(), as_bytes("m"), by_alice, index));
  EXPECT_TRUE(verify_fast(issuer_.gpk(), as_bytes("m"), by_bob, index));
}

TEST_F(GroupSigTest, EpochMismatchRejected) {
  const EpochRevocationIndex index(issuer_.gpk(), 7, {});
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_, 8);
  EXPECT_FALSE(verify_fast(issuer_.gpk(), as_bytes("m"), sig, index));
  EXPECT_THROW(index.is_revoked(sig), Error);
  EXPECT_THROW(EpochRevocationIndex(issuer_.gpk(), 0, {}), Error);
}

TEST_F(GroupSigTest, EpochModeIsLinkableWithinEpoch) {
  // The documented privacy trade-off: same member, same epoch => same tag.
  const Signature s1 = sign(issuer_.gpk(), alice_, as_bytes("m1"), rng_, 9);
  const Signature s2 = sign(issuer_.gpk(), alice_, as_bytes("m2"), rng_, 9);
  const Signature s3 = sign(issuer_.gpk(), bob_, as_bytes("m1"), rng_, 9);
  EXPECT_EQ(epoch_linkability_tag(issuer_.gpk(), s1),
            epoch_linkability_tag(issuer_.gpk(), s2));
  EXPECT_FALSE(epoch_linkability_tag(issuer_.gpk(), s1) ==
               epoch_linkability_tag(issuer_.gpk(), s3));
  // Across epochs the tag changes even for the same member.
  const Signature s4 = sign(issuer_.gpk(), alice_, as_bytes("m1"), rng_, 10);
  EXPECT_FALSE(epoch_linkability_tag(issuer_.gpk(), s1) ==
               epoch_linkability_tag(issuer_.gpk(), s4));
}

TEST_F(GroupSigTest, OperationCountsMatchAnalysis) {
  // E2/E3: the paper counts ~8 exp + 2 pairings to sign and
  // 6 exp + (3 + 2|URL|) pairings to verify. Our Type-3 adaptation adds the
  // T_hat carrier (one extra exp each side, R4 recomputation) and folds
  // same-base pairings, so: sign = 10 exp + 2 pairings,
  // verify = 11 exp + 2 pairings, + 2 pairings per URL entry.
  OpCounters ops;
  const Signature sig =
      sign(issuer_.gpk(), alice_, as_bytes("m"), rng_, 0, &ops);
  EXPECT_EQ(ops.pairings, 2u);
  EXPECT_EQ(ops.total_exp(), 10u);

  ops.reset();
  EXPECT_TRUE(verify_proof(issuer_.gpk(), as_bytes("m"), sig, &ops));
  EXPECT_EQ(ops.pairings, 2u);
  EXPECT_EQ(ops.total_exp(), 11u);

  // Linear growth in |URL|: 2 pairings per token, exactly Eq.3's shape.
  for (std::size_t n : {1u, 4u, 9u}) {
    std::vector<RevocationToken> url;
    for (std::size_t i = 0; i < n; ++i) url.push_back({bob_.a});
    ops.reset();
    verify(issuer_.gpk(), as_bytes("m"), sig, url, &ops);
    EXPECT_EQ(ops.pairings, 2u + 2u * n) << n;
  }

  // Fast variant: pairing cost independent of |URL|.
  std::vector<RevocationToken> big_url(50, RevocationToken{bob_.a});
  const EpochRevocationIndex index(issuer_.gpk(), 3, big_url);
  const Signature esig = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_, 3);
  ops.reset();
  EXPECT_TRUE(verify_fast(issuer_.gpk(), as_bytes("m"), esig, index, &ops));
  EXPECT_EQ(ops.pairings, 4u);
}

TEST_F(GroupSigTest, SignatureSizeMatchesConstant) {
  const Signature sig = sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  EXPECT_EQ(sig.to_bytes().size(), kSignatureSize);
  // E1 context: 782 bytes at 254-bit parameters in the commitment-carrying
  // form (the four commitments R1..R4 travel, the challenge is recomputed;
  // R2 in GT dominates at 384 bytes). The challenge-carrying form was 299
  // bytes; the extra 483 buy batch verifiability (docs/CRYPTO.md §4).
  EXPECT_EQ(kSignatureSize, 782u);
}

TEST_F(GroupSigTest, PlainBs04IsTheGrpZeroSpecialCase) {
  // Ablation of the paper's keygen variation: setting grp = 0 recovers the
  // original Boneh-Shacham scheme (A = g1^(1/(gamma+x))). Everything still
  // works — what the variation *adds* is the per-group secret that lets
  // NO's audit stop at group granularity instead of requiring per-member
  // bookkeeping for role semantics.
  const MemberKey plain = issuer_.derive(Fr::zero(), curve::random_fr(rng_));
  EXPECT_TRUE(plain.is_valid(issuer_.gpk()));
  const Signature sig = sign(issuer_.gpk(), plain, as_bytes("m"), rng_);
  EXPECT_TRUE(verify(issuer_.gpk(), as_bytes("m"), sig, {}));
  EXPECT_TRUE(matches_token(issuer_.gpk(), as_bytes("m"), sig, {plain.a}));
  // PEACE members and plain-BS04 members coexist under the same gpk.
  EXPECT_FALSE(matches_token(issuer_.gpk(), as_bytes("m"), sig, {alice_.a}));
  const Signature peace_sig =
      sign(issuer_.gpk(), alice_, as_bytes("m"), rng_);
  EXPECT_TRUE(verify(issuer_.gpk(), as_bytes("m"), peace_sig, {}));
}

class GroupSigSweep : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

TEST_P(GroupSigSweep, RoundTripManyMembers) {
  crypto::Drbg rng = crypto::Drbg::from_string("gs-sweep", GetParam());
  const Issuer issuer = Issuer::create(rng);
  const Fr grp = issuer.new_group_secret(rng);
  const MemberKey key = issuer.issue(grp, rng);
  const Bytes msg = rng.bytes(10 + GetParam());
  const Signature sig = sign(issuer.gpk(), key, msg, rng);
  EXPECT_TRUE(verify(issuer.gpk(), msg, sig, {}));
  EXPECT_TRUE(matches_token(issuer.gpk(), msg, sig, {key.a}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupSigSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace peace::groupsig
