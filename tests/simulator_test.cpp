#include "mesh/simulator.hpp"

#include <gtest/gtest.h>

namespace peace::mesh {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(10, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_in(5, chain);
  };
  sim.schedule(0, chain);
  sim.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 45u);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.schedule(10, [] {});
  sim.run_until(50);
  EXPECT_THROW(sim.schedule(20, [] {}), Error);
}

TEST(Simulator, RunawayGuard) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
  sim.schedule(0, forever);
  EXPECT_THROW(sim.run_all(/*max_events=*/100), Error);
}

TEST(Simulator, EventBudgetEnforcedInRunUntilAndNamesSimulator) {
  Simulator sim;
  sim.set_name("segment-7");
  sim.set_event_budget(10);
  EXPECT_EQ(sim.event_budget(), 10u);
  std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
  sim.schedule(0, forever);
  try {
    sim.run_until(1000);
    FAIL() << "expected the event budget to throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("segment-7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("event budget exhausted"), std::string::npos) << msg;
  }
  EXPECT_EQ(sim.events_processed(), 10u);
}

TEST(Simulator, EventBudgetOverridesRunAllArgument) {
  Simulator sim;
  sim.set_event_budget(5);
  std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
  sim.schedule(0, forever);
  // The explicit budget wins over run_all's (larger) runaway-guard arg.
  EXPECT_THROW(sim.run_all(/*max_events=*/1000), Error);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, ZeroBudgetLeavesRunUntilUnbounded) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 200) sim.schedule_in(1, chain);
  };
  sim.schedule(0, chain);
  // The pre-sharding default: run_until never trips a budget.
  EXPECT_NO_THROW(sim.run_until(1000));
  EXPECT_EQ(fired, 200);
}

TEST(Simulator, ClockVisibleInsideEvents) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule(42, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 42u);
}

}  // namespace
}  // namespace peace::mesh
