// Pairing correctness: bilinearity, non-degeneracy, and agreement between
// the optimal-ate implementation and the independent Tate reference.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "curve/ecdsa.hpp"
#include "curve/pairing.hpp"

namespace peace::curve {
namespace {

using math::U256;

class PairingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
  crypto::Drbg rng_ = crypto::Drbg::from_string("pairing-test");
};

TEST_F(PairingTest, NonDegenerate) {
  const GT e = pairing(Bn254::get().g1_gen, Bn254::get().g2_gen);
  EXPECT_FALSE(e.is_one());
  EXPECT_FALSE(e.is_zero());
}

TEST_F(PairingTest, GtHasOrderR) {
  const GT e = gt_generator();
  EXPECT_TRUE(e.pow(Bn254::get().r).is_one());
}

TEST_F(PairingTest, InfinityMapsToOne) {
  EXPECT_TRUE(pairing(G1::infinity(), Bn254::get().g2_gen).is_one());
  EXPECT_TRUE(pairing(Bn254::get().g1_gen, G2::infinity()).is_one());
}

TEST_F(PairingTest, BilinearInFirstArgument) {
  const Fr a = random_fr(rng_);
  const G1 g1 = Bn254::get().g1_gen;
  const G2 g2 = Bn254::get().g2_gen;
  EXPECT_EQ(pairing(g1 * a, g2), pairing(g1, g2).pow(a.to_u256()));
}

TEST_F(PairingTest, BilinearInSecondArgument) {
  const Fr b = random_fr(rng_);
  const G1 g1 = Bn254::get().g1_gen;
  const G2 g2 = Bn254::get().g2_gen;
  EXPECT_EQ(pairing(g1, g2 * b), pairing(g1, g2).pow(b.to_u256()));
}

TEST_F(PairingTest, FullBilinearity) {
  const Fr a = random_fr(rng_), b = random_fr(rng_);
  const G1 g1 = Bn254::get().g1_gen;
  const G2 g2 = Bn254::get().g2_gen;
  EXPECT_EQ(pairing(g1 * a, g2 * b), gt_generator().pow((a * b).to_u256()));
}

TEST_F(PairingTest, AdditiveInFirstArgument) {
  const G1 p1 = Bn254::get().g1_gen * random_fr(rng_);
  const G1 p2 = Bn254::get().g1_gen * random_fr(rng_);
  const G2 q = Bn254::get().g2_gen * random_fr(rng_);
  EXPECT_EQ(pairing(p1 + p2, q), pairing(p1, q) * pairing(p2, q));
}

TEST_F(PairingTest, NegationInvertsPairing) {
  const G1 p = Bn254::get().g1_gen * random_fr(rng_);
  const G2 q = Bn254::get().g2_gen * random_fr(rng_);
  EXPECT_EQ(pairing(-p, q), pairing(p, q).unitary_inverse());
  EXPECT_TRUE((pairing(p, q) * pairing(-p, q)).is_one());
}

TEST_F(PairingTest, ConsistentWithTateReference) {
  // The optimal-ate and reduced-Tate maps are both pairings on G1 x G2 but
  // differ by a fixed r-coprime exponent (a standard relation); pointwise
  // equality is not expected. What must hold for both, on the same inputs:
  // bilinearity with the same scalars, values of exact order r, and
  // non-degeneracy.
  const Fr a = random_fr(rng_), b = random_fr(rng_);
  const G1 g1 = Bn254::get().g1_gen;
  const G2 g2 = Bn254::get().g2_gen;
  const GT t = pairing_reference(g1, g2);
  const GT t_ab = pairing_reference(g1 * a, g2 * b);
  EXPECT_EQ(t_ab, t.pow((a * b).to_u256()));
  EXPECT_FALSE(t.is_one());
  EXPECT_TRUE(t.pow(Bn254::get().r).is_one());
  // Same scalar moved between the two maps produces the same exponent
  // action: e(aP, Q) relates to e(P, Q) identically for ate and tate.
  const GT at = pairing(g1, g2);
  EXPECT_EQ(pairing(g1 * a, g2), at.pow(a.to_u256()));
  EXPECT_EQ(pairing_reference(g1 * a, g2), t.pow(a.to_u256()));
}

TEST_F(PairingTest, TateReferenceBilinear) {
  const Fr a = random_fr(rng_);
  const G1 g1 = Bn254::get().g1_gen;
  const G2 g2 = Bn254::get().g2_gen;
  EXPECT_EQ(pairing_reference(g1 * a, g2),
            pairing_reference(g1, g2).pow(a.to_u256()));
}

TEST_F(PairingTest, MultiPairingMatchesProduct) {
  const G1 p1 = Bn254::get().g1_gen * random_fr(rng_);
  const G1 p2 = Bn254::get().g1_gen * random_fr(rng_);
  const G2 q1 = Bn254::get().g2_gen * random_fr(rng_);
  const G2 q2 = Bn254::get().g2_gen * random_fr(rng_);
  EXPECT_EQ(multi_pairing({{p1, q1}, {p2, q2}}),
            pairing(p1, q1) * pairing(p2, q2));
  EXPECT_TRUE(multi_pairing(std::vector<std::pair<G1, G2>>{}).is_one());
}

TEST_F(PairingTest, PreparedMillerLoopBitIdentical) {
  // The prepared path must replay the exact same line sequence as the
  // direct ate loop: identical Fp12 Miller outputs, not just equal GT.
  for (int i = 0; i < 4; ++i) {
    const G1 p = Bn254::get().g1_gen * random_fr(rng_);
    const G2 q = Bn254::get().g2_gen * random_fr(rng_);
    const G2Prepared prep(q);
    EXPECT_EQ(miller_loop(p, prep), miller_loop(p, q));
    EXPECT_EQ(pairing(p, prep), pairing(p, q));
  }
}

TEST_F(PairingTest, PreparedHandlesInfinity) {
  const G2Prepared none;
  EXPECT_TRUE(none.is_infinity());
  EXPECT_TRUE(pairing(Bn254::get().g1_gen, none).is_one());
  const G2Prepared inf(G2::infinity());
  EXPECT_TRUE(inf.is_infinity());
  EXPECT_TRUE(pairing(Bn254::get().g1_gen, inf).is_one());
  const G2Prepared prep(Bn254::get().g2_gen);
  EXPECT_TRUE(pairing(G1::infinity(), prep).is_one());
}

TEST_F(PairingTest, PreparedMultiPairingMatchesProduct) {
  const G1 p1 = Bn254::get().g1_gen * random_fr(rng_);
  const G1 p2 = Bn254::get().g1_gen * random_fr(rng_);
  const G2 q1 = Bn254::get().g2_gen * random_fr(rng_);
  const G2 q2 = Bn254::get().g2_gen * random_fr(rng_);
  const G2Prepared prep1(q1), prep2(q2);
  const std::pair<G1, const G2Prepared*> pairs[] = {{p1, &prep1},
                                                    {p2, &prep2}};
  EXPECT_EQ(multi_pairing(pairs), pairing(p1, q1) * pairing(p2, q2));
  EXPECT_EQ(multi_pairing(pairs), multi_pairing({{p1, q1}, {p2, q2}}));
  EXPECT_TRUE(
      multi_pairing(std::span<const std::pair<G1, const G2Prepared*>>{})
          .is_one());
}

TEST_F(PairingTest, MixedMultiPairingMatchesProduct) {
  // The mixed overload — prepared long-lived bases fused with inline
  // one-shot G2 arguments — must equal the product of individual pairings
  // and agree with both homogeneous overloads.
  const G1 p1 = Bn254::get().g1_gen * random_fr(rng_);
  const G1 p2 = Bn254::get().g1_gen * random_fr(rng_);
  const G1 p3 = Bn254::get().g1_gen * random_fr(rng_);
  const G2 q1 = Bn254::get().g2_gen * random_fr(rng_);
  const G2 q2 = Bn254::get().g2_gen * random_fr(rng_);
  const G2 q3 = Bn254::get().g2_gen * random_fr(rng_);
  const G2Prepared prep1(q1);
  const std::pair<G1, const G2Prepared*> prep[] = {{p1, &prep1}};
  const std::pair<G1, G2> unprep[] = {{p2, q2}, {p3, q3}};
  EXPECT_EQ(multi_pairing(prep, unprep),
            pairing(p1, q1) * pairing(p2, q2) * pairing(p3, q3));
  EXPECT_EQ(multi_pairing(prep, unprep),
            multi_pairing({{p1, q1}, {p2, q2}, {p3, q3}}));
  // Degenerate shapes: all-prepared, all-unprepared, infinities, empty.
  EXPECT_EQ(multi_pairing(prep, {}), pairing(p1, q1));
  EXPECT_EQ(multi_pairing({}, unprep), pairing(p2, q2) * pairing(p3, q3));
  const std::pair<G1, G2> with_inf[] = {{G1::infinity(), q2},
                                        {p3, G2::infinity()}};
  EXPECT_TRUE(multi_pairing({}, with_inf).is_one());
  EXPECT_TRUE(multi_pairing({}, {}).is_one());
}

TEST_F(PairingTest, MixedMultiPairingCrossKindCancellation) {
  // The is_revoked shape: the same G2 point entering once through the
  // prepared table and once through the inline loop must cancel exactly —
  // e(P^a, Q) * e(P^-a, Q) = 1 across the two line sources.
  const Fr a = random_fr(rng_);
  const G1 p = Bn254::get().g1_gen;
  const G2 q = Bn254::get().g2_gen * random_fr(rng_);
  const G2Prepared prep_q(q);
  const std::pair<G1, const G2Prepared*> prep[] = {{p * a, &prep_q}};
  const std::pair<G1, G2> unprep[] = {{-(p * a), q}};
  EXPECT_TRUE(multi_pairing(prep, unprep).is_one());
}

TEST_F(PairingTest, PreparedDetectsDlogRelation) {
  // The revocation-equation pattern (Eq.3) through the prepared path.
  const Fr a = random_fr(rng_);
  const G1 p = Bn254::get().g1_gen;
  const G2Prepared q(Bn254::get().g2_gen * random_fr(rng_));
  const std::pair<G1, const G2Prepared*> pairs[] = {{p * a, &q},
                                                    {-(p * a), &q}};
  EXPECT_TRUE(multi_pairing(pairs).is_one());
}

TEST_F(PairingTest, PreparedConsistentWithTateReference) {
  // Same cross-check as ConsistentWithTateReference, but the ate side runs
  // through precomputed lines: the same scalar must act identically on the
  // prepared-ate and the independent Tate values.
  for (int i = 0; i < 3; ++i) {
    const Fr a = random_fr(rng_);
    const G1 p = Bn254::get().g1_gen * random_fr(rng_);
    const G2 q = Bn254::get().g2_gen * random_fr(rng_);
    const G2Prepared prep(q);
    const GT at = pairing(p, prep);
    const GT tate = pairing_reference(p, q);
    EXPECT_EQ(pairing(p * a, prep), at.pow(a.to_u256()));
    EXPECT_EQ(pairing_reference(p * a, q), tate.pow(a.to_u256()));
    EXPECT_FALSE(at.is_one());
    EXPECT_TRUE(at.pow(Bn254::get().r).is_one());
    EXPECT_TRUE(tate.pow(Bn254::get().r).is_one());
  }
}

TEST_F(PairingTest, ProductOfPairingsDetectsDlogRelation) {
  // e(P^a, Q) * e(P^-a, Q) = 1: the identity-check pattern used by the
  // revocation equation Eq.3.
  const Fr a = random_fr(rng_);
  const G1 p = Bn254::get().g1_gen;
  const G2 q = Bn254::get().g2_gen * random_fr(rng_);
  EXPECT_TRUE(multi_pairing({{p * a, q}, {-(p * a), q}}).is_one());
}

TEST_F(PairingTest, UntwistedPointOnCurve) {
  // The untwist map must land on E(Fp12): y^2 = x^3 + 3.
  math::Fp12 x, y;
  untwist(Bn254::get().g2_gen, x, y);
  math::Fp12 three = math::Fp12::one();
  three = three + three + math::Fp12::one();
  EXPECT_EQ(y * y, x * x * x + three);
}

TEST_F(PairingTest, FinalExponentiationKillsSubfield) {
  // Elements of Fp6 (c1 = 0) must map to 1: the denominator-elimination
  // property the Tate reference relies on.
  crypto::Drbg rng = crypto::Drbg::from_string("fexp-subfield");
  const math::Fp6 sub{{math::Fp::from_bytes_reduce(rng.bytes(32)),
                       math::Fp::from_bytes_reduce(rng.bytes(32))},
                      {math::Fp::from_bytes_reduce(rng.bytes(32)),
                       math::Fp::from_bytes_reduce(rng.bytes(32))},
                      {math::Fp::from_bytes_reduce(rng.bytes(32)),
                       math::Fp::from_bytes_reduce(rng.bytes(32))}};
  EXPECT_TRUE(final_exponentiation(math::Fp12(sub, math::Fp6::zero())).is_one());
}

TEST_F(PairingTest, HardPartChainMatchesGenericPath) {
  // The optimized final exponentiation must agree exactly with the
  // independent generic square-and-multiply on arbitrary Miller outputs.
  for (int i = 0; i < 3; ++i) {
    const G1 p = Bn254::get().g1_gen * random_fr(rng_);
    const G2 q = Bn254::get().g2_gen * random_fr(rng_);
    const math::Fp12 m = miller_loop(p, q);
    EXPECT_EQ(final_exponentiation(m), final_exponentiation_generic(m));
  }
}

TEST_F(PairingTest, PairingOpCounterAdvances) {
  const std::uint64_t before = pairing_op_count();
  pairing(Bn254::get().g1_gen, Bn254::get().g2_gen);
  EXPECT_EQ(pairing_op_count(), before + 1);
}

class PairingProperty : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
};

TEST_P(PairingProperty, BilinearityAcrossSeeds) {
  crypto::Drbg rng = crypto::Drbg::from_string("pairing-prop", GetParam());
  const Fr a = random_fr(rng), b = random_fr(rng);
  const G1 p = Bn254::get().g1_gen * random_fr(rng);
  const G2 q = Bn254::get().g2_gen * random_fr(rng);
  const GT base = pairing(p, q);
  // e(aP, bQ) = e(P, Q)^(ab), e(aP, Q) * e(P, Q)^b = e(P, Q)^(a+b).
  EXPECT_EQ(pairing(p * a, q * b), base.pow((a * b).to_u256()));
  EXPECT_EQ(pairing(p * a, q) * base.pow(b.to_u256()),
            base.pow((a + b).to_u256()));
  // Swap argument sides: e(aP, Q) == e(P, aQ).
  EXPECT_EQ(pairing(p * a, q), pairing(p, q * a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairingProperty, ::testing::Range(0, 8));

TEST_F(PairingTest, CyclotomicSquareMatchesGenericSquare) {
  // GT elements live in the cyclotomic subgroup, where the Granger-Scott
  // shortcut must agree exactly with the generic Fp12 squaring.
  crypto::Drbg rng = crypto::Drbg::from_string("cyclo");
  for (int iter = 0; iter < 4; ++iter) {
    const G1 p = Bn254::get().g1_gen * random_fr(rng);
    const G2 q = Bn254::get().g2_gen * random_fr(rng);
    GT f = pairing(p, q);
    for (int step = 0; step < 8; ++step) {
      ASSERT_EQ(f.cyclotomic_square(), f.square());
      f = f.cyclotomic_square();
    }
  }
  ASSERT_EQ(GT(math::Fp12::one()).cyclotomic_square(), math::Fp12::one());
}

}  // namespace
}  // namespace peace::curve
