// Tower-field (Fp2 / Fp6 / Fp12) algebra and Frobenius consistency.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "curve/bn254.hpp"
#include "curve/pairing.hpp"
#include "math/bigint.hpp"

namespace peace::math {
namespace {

using curve::Bn254;

class TowerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }

  static Fp2 rand2(crypto::Drbg& rng) {
    return {Fp::from_bytes_reduce(rng.bytes(32)),
            Fp::from_bytes_reduce(rng.bytes(32))};
  }
  static Fp6 rand6(crypto::Drbg& rng) {
    return {rand2(rng), rand2(rng), rand2(rng)};
  }
  static Fp12 rand12(crypto::Drbg& rng) { return {rand6(rng), rand6(rng)}; }
};

TEST_F(TowerTest, Fp2ISquaredIsMinusOne) {
  const Fp2 i(Fp::zero(), Fp::one());
  EXPECT_EQ(i.square(), Fp2(-Fp::one(), Fp::zero()));
  EXPECT_EQ(i.mul_by_i(), i * i);
}

TEST_F(TowerTest, Fp2MulInverse) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp2");
  for (int i = 0; i < 20; ++i) {
    const Fp2 a = rand2(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fp2::one());
    EXPECT_EQ(a.square(), a * a);
    EXPECT_EQ(a.dbl(), a + a);
  }
  EXPECT_THROW(Fp2::zero().inverse(), Error);
}

TEST_F(TowerTest, Fp2ConjugateIsFrobenius) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp2-frob");
  for (int i = 0; i < 5; ++i) {
    const Fp2 a = rand2(rng);
    EXPECT_EQ(a.conjugate(), a.pow(Fp::modulus()));
  }
}

TEST_F(TowerTest, Fp2NormMultiplicative) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp2-norm");
  const Fp2 a = rand2(rng), b = rand2(rng);
  EXPECT_EQ((a * b).norm(), a.norm() * b.norm());
}

TEST_F(TowerTest, Fp2SqrtOfSquares) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp2-sqrt");
  for (int i = 0; i < 20; ++i) {
    const Fp2 a = rand2(rng);
    Fp2 root;
    ASSERT_TRUE(a.square().sqrt(root));
    EXPECT_TRUE(root == a || root == -a);
  }
}

TEST_F(TowerTest, Fp2SqrtNonSquareFails) {
  // xi = 9 + i is a non-square (it is the sextic twist non-residue).
  Fp2 root;
  EXPECT_FALSE(fp2_xi().sqrt(root));
}

TEST_F(TowerTest, Fp6MulInverseAndV) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp6");
  for (int i = 0; i < 10; ++i) {
    const Fp6 a = rand6(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fp6::one());
  }
  // mul_by_v equals multiplication by the element v = (0, 1, 0).
  const Fp6 v(Fp2::zero(), Fp2::one(), Fp2::zero());
  const Fp6 a = rand6(rng);
  EXPECT_EQ(a.mul_by_v(), a * v);
  // v^3 = xi.
  EXPECT_EQ(v * v * v, Fp6(fp2_xi(), Fp2::zero(), Fp2::zero()));
}

TEST_F(TowerTest, Fp12MulInverseSquare) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp12");
  for (int i = 0; i < 10; ++i) {
    const Fp12 a = rand12(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.inverse(), Fp12::one());
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST_F(TowerTest, Fp12RingLaws) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp12-laws");
  const Fp12 a = rand12(rng), b = rand12(rng), c = rand12(rng);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST_F(TowerTest, Fp12WSquaredIsV) {
  // w = (0, 1) in the Fp6 pair basis; w^2 must equal v.
  const Fp12 w(Fp6::zero(), Fp6::one());
  const Fp12 v(Fp6(Fp2::zero(), Fp2::one(), Fp2::zero()), Fp6::zero());
  EXPECT_EQ(w.square(), v);
  // w^6 = xi.
  Fp12 w6 = Fp12::one();
  for (int i = 0; i < 6; ++i) w6 *= w;
  const Fp12 xi(Fp6(fp2_xi(), Fp2::zero(), Fp2::zero()), Fp6::zero());
  EXPECT_EQ(w6, xi);
}

TEST_F(TowerTest, MulByLineMatchesGenericMul) {
  // The sparse line multiplication used by the Miller loop must equal a
  // generic multiplication by the explicitly constructed sparse element.
  crypto::Drbg rng = crypto::Drbg::from_string("fp12-line");
  for (int i = 0; i < 10; ++i) {
    const Fp12 f = rand12(rng);
    const Fp2 a = rand2(rng), b = rand2(rng), c = rand2(rng);
    const Fp12 line(Fp6(a, Fp2::zero(), Fp2::zero()),
                    Fp6(b, c, Fp2::zero()));
    EXPECT_EQ(f.mul_by_line(a, b, c), f * line);
  }
  // Degenerate coefficient cases.
  const Fp12 f = rand12(rng);
  const Fp2 z = Fp2::zero();
  EXPECT_EQ(f.mul_by_line(z, z, z), Fp12::zero());
  EXPECT_EQ(f.mul_by_line(Fp2::one(), z, z), f);
}

TEST_F(TowerTest, FrobeniusMatchesPowP) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp12-frob");
  const Fp12 a = rand12(rng);
  EXPECT_EQ(curve::frobenius12(a), a.pow(Fp::modulus()));
}

TEST_F(TowerTest, FrobeniusOrder12) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp12-frob12");
  const Fp12 a = rand12(rng);
  Fp12 cur = a;
  for (int i = 0; i < 12; ++i) cur = curve::frobenius12(cur);
  EXPECT_EQ(cur, a);
}

TEST_F(TowerTest, ConjugateIsFrobenius6) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp12-conj");
  const Fp12 a = rand12(rng);
  Fp12 cur = a;
  for (int i = 0; i < 6; ++i) cur = curve::frobenius12(cur);
  EXPECT_EQ(cur, a.conjugate());
}

TEST_F(TowerTest, ToBytesIsInjective) {
  crypto::Drbg rng = crypto::Drbg::from_string("fp12-bytes");
  const Fp12 a = rand12(rng), b = rand12(rng);
  EXPECT_EQ(a.to_bytes().size(), 384u);
  EXPECT_NE(a.to_bytes(), b.to_bytes());
}

}  // namespace
}  // namespace peace::math
