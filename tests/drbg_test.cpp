#include "crypto/drbg.hpp"

#include <gtest/gtest.h>

#include <set>

namespace peace::crypto {
namespace {

TEST(Drbg, Deterministic) {
  Drbg a = Drbg::from_string("seed");
  Drbg b = Drbg::from_string("seed");
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Drbg, SeedsSeparate) {
  Drbg a = Drbg::from_string("seed", 0);
  Drbg b = Drbg::from_string("seed", 1);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, StreamsAcrossRefills) {
  // Reads larger than the internal cache must be consistent with many
  // small reads.
  Drbg a = Drbg::from_string("refill");
  Drbg b = Drbg::from_string("refill");
  const Bytes big = a.bytes(5000);
  Bytes small;
  while (small.size() < 5000) append(small, b.bytes(137));
  small.resize(5000);
  EXPECT_EQ(big, small);
}

TEST(Drbg, UniformBound) {
  Drbg rng = Drbg::from_string("uniform");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), Error);
}

TEST(Drbg, UniformCoversRange) {
  Drbg rng = Drbg::from_string("coverage");
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Drbg, UniformRealInUnitInterval) {
  Drbg rng = Drbg::from_string("real");
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Drbg, ForkIndependent) {
  Drbg parent = Drbg::from_string("fork");
  Drbg c1 = parent.fork("a");
  Drbg c2 = parent.fork("a");  // parent state advanced: different child
  EXPECT_NE(c1.bytes(32), c2.bytes(32));
}

TEST(Drbg, OsEntropyWorks) {
  Drbg a = Drbg::from_os_entropy();
  Drbg b = Drbg::from_os_entropy();
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, ByteHistogramRoughlyFlat) {
  Drbg rng = Drbg::from_string("hist");
  std::array<int, 256> counts{};
  const Bytes data = rng.bytes(256 * 100);
  for (std::uint8_t b : data) counts[b]++;
  for (int c : counts) {
    EXPECT_GT(c, 40);   // expectation 100; loose 6-sigma-ish bounds
    EXPECT_LT(c, 200);
  }
}

}  // namespace
}  // namespace peace::crypto
