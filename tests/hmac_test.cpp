#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace peace::crypto {
namespace {

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, as_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(as_bytes("Jefe"),
                               as_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, as_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDiffer) {
  EXPECT_NE(hmac_sha256(as_bytes("k1"), as_bytes("m")),
            hmac_sha256(as_bytes("k2"), as_bytes("m")));
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, EmptySaltAllowed) {
  const Bytes okm = hkdf({}, as_bytes("secret"), as_bytes("ctx"), 64);
  EXPECT_EQ(okm.size(), 64u);
}

TEST(Hkdf, LengthLimit) {
  EXPECT_THROW(hkdf_expand(Bytes(32, 1), {}, 255 * 32 + 1), Error);
  EXPECT_EQ(hkdf_expand(Bytes(32, 1), {}, 255 * 32).size(), 255u * 32);
}

TEST(Hkdf, InfoSeparatesOutputs) {
  const Bytes prk = hkdf_extract(as_bytes("salt"), as_bytes("ikm"));
  EXPECT_NE(hkdf_expand(prk, as_bytes("enc"), 32),
            hkdf_expand(prk, as_bytes("mac"), 32));
}

}  // namespace
}  // namespace peace::crypto
