// Differential tests for the curve-layer fast paths (docs/CRYPTO.md §6):
// GLV/GLS endomorphism multiplication vs the plain windowed oracle, the
// lazily reduced tower vs the eager formulas, batched affine normalization
// vs per-point inversion, the wNAF window sweep, and the op-count
// regression gates on the new curve.* counters.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "crypto/drbg.hpp"
#include "curve/bn254.hpp"
#include "curve/ecdsa.hpp"
#include "curve/hash_to_curve.hpp"
#include "curve/pairing.hpp"
#include "obs/metrics.hpp"

namespace peace::curve {
namespace {

using math::BigInt;
using math::Fp;
using math::Fp12;
using math::Fp2;
using math::U256;

class CurveSpeedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
  crypto::Drbg rng_ = crypto::Drbg::from_string("curve-speed-test");

  Fr rand_fr() { return random_fr(rng_); }
  G1 rand_g1() { return Bn254::get().g1_gen * rand_fr(); }
  G2 rand_g2() { return Bn254::get().g2_gen * rand_fr(); }
  Fp rand_fp() {
    Bytes b(32);
    rng_.fill(b.data(), b.size());
    return Fp::from_bytes_reduce(b);
  }
  Fp2 rand_fp2() { return Fp2(rand_fp(), rand_fp()); }
  Fp12 rand_fp12() {
    using math::Fp6;
    return Fp12(Fp6(rand_fp2(), rand_fp2(), rand_fp2()),
                Fp6(rand_fp2(), rand_fp2(), rand_fp2()));
  }
  /// A unitary Fp12 (in the cyclotomic subgroup), as cyclotomic_square
  /// requires: any pairing value qualifies.
  Fp12 rand_unitary() { return pairing(rand_g1(), rand_g2()); }

  /// Edge scalars the decomposition paths must agree on: 0, 1, 2, r-2,
  /// r-1, r, r+1, 2r, and the all-ones pattern.
  std::vector<U256> edge_scalars() {
    const BigInt r = BigInt::from_u256(Bn254::get().r);
    std::vector<U256> ks = {U256(0), U256(1), U256(2),
                            (r - BigInt(2)).to_u256(),
                            (r - BigInt(1)).to_u256(), r.to_u256(),
                            (r + BigInt(1)).to_u256(),
                            (r + r).to_u256()};
    U256 ones;
    ones.limb = {~0ull, ~0ull, ~0ull, ~0ull};
    ks.push_back(ones);
    return ks;
  }
};

TEST_F(CurveSpeedTest, GlvMatchesPlainOnRandomScalars) {
  const G1 p = rand_g1();
  for (int i = 0; i < 8; ++i) {
    const U256 k = rand_fr().to_u256();
    const G1 fast = g1_mul_glv(p, k);
    const G1 plain = p.mul_windowed(k);
    EXPECT_EQ(fast, plain);
    EXPECT_EQ(p * k, plain);  // operator* routes through the endo hook
    EXPECT_EQ(g1_to_bytes(fast), g1_to_bytes(plain));  // bit-identical wire
  }
}

TEST_F(CurveSpeedTest, GlvMatchesPlainOnEdgeScalars) {
  const G1 p = rand_g1();
  for (const U256& k : edge_scalars()) {
    EXPECT_EQ(g1_mul_glv(p, k), p.mul_windowed(k)) << "k bits "
                                                   << k.bit_length();
  }
  EXPECT_TRUE(g1_mul_glv(G1::infinity(), U256(12345)).is_infinity());
}

TEST_F(CurveSpeedTest, GlsMatchesPlainOnRandomScalars) {
  const G2 q = rand_g2();
  for (int i = 0; i < 8; ++i) {
    const U256 k = rand_fr().to_u256();
    const G2 fast = g2_mul_gls(q, k);
    const G2 plain = q.mul_windowed(k);
    EXPECT_EQ(fast, plain);
    EXPECT_EQ(g2_to_bytes(fast), g2_to_bytes(plain));
  }
}

TEST_F(CurveSpeedTest, GlsMatchesPlainOnEdgeScalars) {
  const G2 q = rand_g2();
  for (const U256& k : edge_scalars()) {
    EXPECT_EQ(g2_mul_gls(q, k), q.mul_windowed(k)) << "k bits "
                                                   << k.bit_length();
  }
}

TEST_F(CurveSpeedTest, DecompositionsRecombine) {
  // k0 + k1*lambda == k (mod r), and the 4-way GLS analogue, checked in
  // Fr arithmetic for random and edge scalars.
  const Fr lam = Fr::from_u256(Bn254::get().glv_lambda);
  const Fr lam2 = Fr::from_u256(Bn254::get().gls_lambda);
  std::vector<U256> ks = edge_scalars();
  for (int i = 0; i < 8; ++i) ks.push_back(rand_fr().to_u256());
  for (const U256& k : ks) {
    const Fr want = Fr::from_bytes_reduce(k.to_bytes());
    const GlvSplit s2 = glv_decompose(k);
    Fr acc = Fr::from_u256(s2.k[0]) * (s2.neg[0] ? -Fr::one() : Fr::one());
    acc = acc +
          Fr::from_u256(s2.k[1]) * (s2.neg[1] ? -Fr::one() : Fr::one()) * lam;
    EXPECT_EQ(acc, want);
    // Components are genuinely short (the whole point of the split).
    EXPECT_LE(s2.k[0].bit_length(), 130u);
    EXPECT_LE(s2.k[1].bit_length(), 130u);

    const GlsSplit s4 = gls_decompose(k);
    Fr acc4 = Fr::zero();
    Fr lpow = Fr::one();
    for (int j = 0; j < 4; ++j) {
      acc4 = acc4 + Fr::from_u256(s4.k[j]) *
                        (s4.neg[j] ? -Fr::one() : Fr::one()) * lpow;
      lpow = lpow * lam2;
      EXPECT_LE(s4.k[j].bit_length(), 96u);
    }
    EXPECT_EQ(acc4, want);
  }
}

TEST_F(CurveSpeedTest, EndoMapsActAsEigenvalues) {
  const G1 p = rand_g1();
  EXPECT_EQ(g1_endo(p), p * Bn254::get().glv_lambda);
  const G2 q = rand_g2();
  EXPECT_EQ(g2_psi(q), q * Bn254::get().gls_lambda);
}

TEST_F(CurveSpeedTest, MsmMatchesSumOfMultiplications) {
  // Endo-split and plain MSMs against the straight sum, several sizes.
  for (const std::size_t n : {1u, 2u, 3u, 5u, 9u}) {
    std::vector<G1> pts;
    std::vector<G2> qts;
    std::vector<U256> ks;
    G1 want1 = G1::infinity();
    G2 want2 = G2::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      pts.push_back(rand_g1());
      qts.push_back(rand_g2());
      ks.push_back(rand_fr().to_u256());
      want1 = want1 + pts.back().mul_windowed(ks.back());
      want2 = want2 + qts.back().mul_windowed(ks.back());
    }
    EXPECT_EQ(g1_msm(std::span<const G1>(pts), std::span<const U256>(ks)),
              want1);
    EXPECT_EQ(g2_msm(std::span<const G2>(qts), std::span<const U256>(ks)),
              want2);
    EXPECT_EQ(multi_scalar_mul<G1Traits>(std::span<const G1>(pts),
                                         std::span<const U256>(ks)),
              want1);
  }
}

TEST_F(CurveSpeedTest, WnafWindowSweepIsExact) {
  const G1 p = rand_g1();
  const G2 q = rand_g2();
  const U256 k = rand_fr().to_u256();
  const G1 want1 = p.mul_windowed(k);
  const G2 want2 = q.mul_windowed(k);
  const G1 pts[1] = {p};
  const G2 qts[1] = {q};
  const U256 ks[1] = {k};
  for (unsigned w = 2; w <= 7; ++w) {
    EXPECT_EQ(msm_wnaf(std::span<const G1>(pts), std::span<const U256>(ks), w),
              want1)
        << "w=" << w;
    EXPECT_EQ(msm_wnaf(std::span<const G2>(qts), std::span<const U256>(ks), w),
              want2)
        << "w=" << w;
  }
}

TEST_F(CurveSpeedTest, BatchNormalizeMatchesPerPointAffine) {
  std::vector<G1> pts;
  for (int i = 0; i < 6; ++i) pts.push_back(rand_g1() + rand_g1());
  pts.push_back(G1::infinity());  // flag path
  pts.push_back(rand_g1().dbl());
  std::vector<AffinePoint<G1Traits>> aff(pts.size());
  batch_normalize<G1Traits>(pts, aff);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(aff[i].infinity, pts[i].is_infinity());
    if (aff[i].infinity) continue;
    Fp x, y;
    pts[i].to_affine(x, y);
    // Unique-inverse argument (CRYPTO.md §6.4): bit-identical coordinates.
    EXPECT_EQ(aff[i].x, x);
    EXPECT_EQ(aff[i].y, y);
  }
}

TEST_F(CurveSpeedTest, OneInversionPerMsmNormalization) {
  const auto inversions = [] {
    return obs::Registry::global().counter("curve.field_inversions").value();
  };
  std::vector<G1> pts;
  std::vector<U256> ks;
  for (int i = 0; i < 5; ++i) {
    pts.push_back(rand_g1());
    ks.push_back(rand_fr().to_u256());
  }
  const std::uint64_t before = inversions();
  (void)multi_scalar_mul<G1Traits>(std::span<const G1>(pts),
                                   std::span<const U256>(ks));
  EXPECT_EQ(inversions() - before, 1u);  // whole 5-term MSM: one inversion

  const std::uint64_t before_glv = inversions();
  (void)(rand_g1() * rand_fr());  // GLV path: one table normalization
  // rand_g1 itself costs a multiplication; count only the outer one by
  // measuring a bare operator* on a fixed point.
  const G1 p = Bn254::get().g1_gen;
  const std::uint64_t before_fixed = inversions();
  (void)(p * rand_fr().to_u256());
  EXPECT_EQ(inversions() - before_fixed, 1u);
  EXPECT_GE(inversions(), before_glv);

  // Decomposition counters move with the endo paths.
  const auto glv_count = [] {
    return obs::Registry::global()
        .counter("curve.glv_decompositions")
        .value();
  };
  const std::uint64_t gb = glv_count();
  (void)g1_mul_glv(p, rand_fr().to_u256());
  EXPECT_EQ(glv_count() - gb, 1u);
}

TEST_F(CurveSpeedTest, LazyFp2MulMatchesEager) {
  for (int i = 0; i < 32; ++i) {
    const Fp2 a = rand_fp2(), b = rand_fp2();
    const Fp2 lazy = a * b;
    const Fp2 eager = a.mul_eager(b);
    EXPECT_EQ(lazy, eager);
    // Canonical representatives: identical bytes, not just equal values.
    EXPECT_EQ(lazy.c0.to_bytes(), eager.c0.to_bytes());
    EXPECT_EQ(lazy.c1.to_bytes(), eager.c1.to_bytes());
  }
  // mul_by_xi's add-chain form vs straight multiplication by 9 + i.
  const Fp2 x = rand_fp2();
  EXPECT_EQ(x.mul_by_xi(), x * math::fp2_xi());
}

TEST_F(CurveSpeedTest, LazyMulByLineMatchesEager) {
  for (int i = 0; i < 8; ++i) {
    const Fp12 f = rand_fp12();
    const Fp2 a = rand_fp2(), b = rand_fp2(), c = rand_fp2();
    EXPECT_EQ(f.mul_by_line(a, b, c), f.mul_by_line_eager(a, b, c));
  }
}

TEST_F(CurveSpeedTest, CyclotomicSquareMatchesGenericOnUnitary) {
  for (int i = 0; i < 4; ++i) {
    const Fp12 u = rand_unitary();
    EXPECT_EQ(u.cyclotomic_square(), u.square());
  }
}

TEST_F(CurveSpeedTest, SubgroupCheckAgainstOrderMultiplication) {
  // Subgroup points pass; raw twist points (cofactor not cleared) fail —
  // and the psi check agrees with the [r]Q == O ground truth on both.
  const auto& bn = Bn254::get();
  for (int i = 0; i < 4; ++i) {
    const G2 q = rand_g2();
    EXPECT_TRUE(g2_in_subgroup(q));
    EXPECT_TRUE((q * bn.r).is_infinity());
  }
  EXPECT_TRUE(g2_in_subgroup(G2::infinity()));
  // Deterministic raw twist point (same construction as hash_to_g2
  // pre-cofactor): on the curve, overwhelmingly not order r.
  for (std::uint64_t c = 1;; ++c) {
    const Fp2 x(Fp::from_u64(c), Fp::from_u64(1));
    const Fp2 rhs = x.square() * x + G2Traits::b();
    Fp2 y;
    if (!rhs.sqrt(y)) continue;
    const G2 raw(x, y);
    EXPECT_EQ(g2_in_subgroup(raw), (raw * bn.r).is_infinity());
    EXPECT_FALSE(g2_in_subgroup(raw));
    // Cofactor clearing lands it in the subgroup, same element both ways.
    const G2 cleared = g2_clear_cofactor(raw);
    EXPECT_EQ(cleared, raw * bn.g2_cofactor);
    EXPECT_TRUE(g2_in_subgroup(cleared));
    break;
  }
}

TEST_F(CurveSpeedTest, OptimalAteMatchesReferenceTate) {
  // Cross-check the optimal-ate fast path against the independent Tate
  // reference on GLV/GLS-computed inputs. Ate and Tate are distinct
  // pairings (they differ by a fixed power coprime to r), so the check is
  // on the bilinear action, not pointwise equality — same pattern as
  // pairing_test's ConsistentWithTateReference.
  const Fr a = rand_fr();
  const U256 k1 = rand_fr().to_u256();
  const U256 k2 = rand_fr().to_u256();
  const G1 p = g1_mul_glv(Bn254::get().g1_gen, k1);
  const G2 q = g2_mul_gls(Bn254::get().g2_gen, k2);
  const GT at = pairing(p, q);
  const GT tate = pairing_reference(p, q);
  EXPECT_EQ(pairing(g1_mul_glv(p, a.to_u256()), q), at.pow(a.to_u256()));
  EXPECT_EQ(pairing_reference(p * a, q), tate.pow(a.to_u256()));
  EXPECT_FALSE(at.is_one());
  EXPECT_TRUE(at.pow(Bn254::get().r).is_one());
  EXPECT_TRUE(tate.pow(Bn254::get().r).is_one());
  // Endo-produced points are the plain-path points, bit for bit.
  EXPECT_EQ(g1_to_bytes(p), g1_to_bytes(Bn254::get().g1_gen * k1));
  EXPECT_EQ(g2_to_bytes(q), g2_to_bytes(Bn254::get().g2_gen * k2));
}

TEST_F(CurveSpeedTest, HashToG2StillLandsInSubgroup) {
  // hash_to_g2 now clears cofactors via psi; outputs must stay order-r.
  const Bytes seed = {1, 2, 3};
  const G2 h = hash_to_g2("curve-speed-test", seed);
  EXPECT_TRUE(g2_in_subgroup(h));
  EXPECT_TRUE((h * Bn254::get().r).is_infinity());
  EXPECT_FALSE(h.is_infinity());
}

}  // namespace
}  // namespace peace::curve
