#include "crypto/chacha20.hpp"

#include <gtest/gtest.h>

#include "crypto/poly1305.hpp"

namespace peace::crypto {
namespace {

const char* kSunscreen =
    "Ladies and Gentlemen of the class of '99: If I could offer you "
    "only one tip for the future, sunscreen would be it.";

TEST(ChaCha20, Rfc8439Encryption) {
  // RFC 8439 section 2.4.2.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000000000004a00000000");
  ChaCha20 c(key, nonce, 1);
  const Bytes ct = c.crypt_copy(as_bytes(kSunscreen));
  EXPECT_EQ(to_hex(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const Bytes key(32, 0x42);
  const Bytes nonce(12, 0x24);
  ChaCha20 enc(key, nonce);
  const Bytes ct = enc.crypt_copy(as_bytes("round trip me please"));
  ChaCha20 dec(key, nonce);
  const Bytes pt = dec.crypt_copy(ct);
  EXPECT_EQ(pt, to_bytes("round trip me please"));
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  const Bytes key(32, 7);
  const Bytes nonce(12, 9);
  Bytes msg(300);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i);
  ChaCha20 whole(key, nonce);
  const Bytes expect = whole.crypt_copy(msg);
  ChaCha20 chunked(key, nonce);
  Bytes got = msg;
  chunked.crypt(got.data(), 1);
  chunked.crypt(got.data() + 1, 63);
  chunked.crypt(got.data() + 64, 100);
  chunked.crypt(got.data() + 164, msg.size() - 164);
  EXPECT_EQ(got, expect);
}

TEST(ChaCha20, RejectsBadSizes) {
  EXPECT_THROW(ChaCha20(Bytes(31, 0), Bytes(12, 0)), Error);
  EXPECT_THROW(ChaCha20(Bytes(32, 0), Bytes(11, 0)), Error);
}

TEST(ChaCha20, BlockFunctionPolyKey) {
  // RFC 8439 section 2.6.2: Poly1305 key generation.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(0x80 + i);
  const Bytes nonce = from_hex("000000000001020304050607");
  const auto block = ChaCha20::block(key, nonce, 0);
  EXPECT_EQ(to_hex({block.data(), 32}),
            "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646");
}

TEST(Poly1305, Rfc8439Vector) {
  const Bytes key = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const Bytes tag =
      Poly1305::mac(key, as_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(to_hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, IncrementalMatchesOneShot) {
  const Bytes key(32, 0x33);
  Bytes msg(100);
  for (std::size_t i = 0; i < msg.size(); ++i)
    msg[i] = static_cast<std::uint8_t>(i * 3);
  Poly1305 p(key);
  p.update({msg.data(), 10});
  p.update({msg.data() + 10, 22});
  p.update({msg.data() + 32, 68});
  auto t = p.finalize();
  EXPECT_EQ(Bytes(t.begin(), t.end()), Poly1305::mac(key, msg));
}

TEST(Poly1305, EmptyMessage) {
  const Bytes key(32, 0x01);
  EXPECT_EQ(Poly1305::mac(key, {}).size(), 16u);
}

TEST(Poly1305, KeyMatters) {
  EXPECT_NE(Poly1305::mac(Bytes(32, 1), as_bytes("m")),
            Poly1305::mac(Bytes(32, 2), as_bytes("m")));
}

}  // namespace
}  // namespace peace::crypto
