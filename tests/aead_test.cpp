#include "crypto/aead.hpp"

#include <gtest/gtest.h>

namespace peace::crypto {
namespace {

const char* kSunscreen =
    "Ladies and Gentlemen of the class of '99: If I could offer you "
    "only one tip for the future, sunscreen would be it.";

TEST(Aead, Rfc8439Vector) {
  // RFC 8439 section 2.8.2.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(0x80 + i);
  const Bytes nonce = from_hex("070000004041424344454647");
  const Bytes aad = from_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes sealed = aead_seal(key, nonce, aad, as_bytes(kSunscreen));
  EXPECT_EQ(to_hex(sealed),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b61161ae10b594f09e26a7e902ecbd060"
            "0691");
}

TEST(Aead, RoundTrip) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes sealed = aead_seal(key, nonce, as_bytes("hdr"), as_bytes("body"));
  const auto opened = aead_open(key, nonce, as_bytes("hdr"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("body"));
}

TEST(Aead, EmptyPlaintextAndAad) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes sealed = aead_seal(key, nonce, {}, {});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  const auto opened = aead_open(key, nonce, {}, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, TamperedCiphertextRejected) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  Bytes sealed = aead_seal(key, nonce, {}, as_bytes("attack at dawn"));
  sealed[0] ^= 1;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, TamperedTagRejected) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  Bytes sealed = aead_seal(key, nonce, {}, as_bytes("attack at dawn"));
  sealed.back() ^= 1;
  EXPECT_FALSE(aead_open(key, nonce, {}, sealed).has_value());
}

TEST(Aead, WrongAadRejected) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes sealed = aead_seal(key, nonce, as_bytes("a"), as_bytes("m"));
  EXPECT_FALSE(aead_open(key, nonce, as_bytes("b"), sealed).has_value());
}

TEST(Aead, WrongKeyOrNonceRejected) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  const Bytes sealed = aead_seal(key, nonce, {}, as_bytes("m"));
  EXPECT_FALSE(aead_open(Bytes(32, 0x12), nonce, {}, sealed).has_value());
  EXPECT_FALSE(aead_open(key, Bytes(12, 0x23), {}, sealed).has_value());
}

TEST(Aead, TruncatedInputRejected) {
  const Bytes key(32, 0x11);
  const Bytes nonce(12, 0x22);
  EXPECT_FALSE(aead_open(key, nonce, {}, Bytes(15, 0)).has_value());
}

}  // namespace
}  // namespace peace::crypto
