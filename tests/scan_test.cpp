// The batched revocation-scan stack: groupsig::scan_tokens against the
// per-token matches_token reference (verdict bit-identity and the
// one-Fp12-inversion-per-scan contract), and the pool-sharded large-URL
// scan (peace::proto::url_scan_revoked) against the sequential path with
// the revoked hit at every interesting position.
#include "peace/url_scan.hpp"

#include <gtest/gtest.h>

#include "curve/ecdsa.hpp"
#include "groupsig/groupsig.hpp"
#include "peace/verify_pool.hpp"

namespace peace::proto {
namespace {

using groupsig::MemberKey;
using groupsig::PreparedBases;
using groupsig::RevocationToken;
using groupsig::Signature;
using groupsig::TokenScan;

class ScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  ScanTest()
      : rng_(crypto::Drbg::from_string("scan-test")),
        issuer_(groupsig::Issuer::create(rng_)),
        grp_(issuer_.new_group_secret(rng_)),
        alice_(issuer_.issue(grp_, rng_)),
        bob_(issuer_.issue(grp_, rng_)) {}

  /// `n` well-formed tokens no issued member owns (distinct small multiples
  /// of the generator) — scan fodder that can never match a real signer,
  /// cheap enough to build URLs past the sharding threshold.
  static std::vector<RevocationToken> fodder(std::size_t n) {
    std::vector<RevocationToken> url;
    url.reserve(n);
    const curve::G1 g = curve::Bn254::get().g1_gen;
    curve::G1 a = g;
    for (std::size_t i = 0; i < n; ++i) {
      a = a + g;
      url.push_back({a});
    }
    return url;
  }

  Signature sign_m(const MemberKey& key) {
    return groupsig::sign(issuer_.gpk(), key, as_bytes("m"), rng_);
  }

  PreparedBases prepared_for(const Signature& sig) {
    return groupsig::prepare_bases(issuer_.gpk(), as_bytes("m"), sig);
  }

  crypto::Drbg rng_;
  groupsig::Issuer issuer_;
  curve::Fr grp_;
  MemberKey alice_, bob_;
};

TEST_F(ScanTest, BatchedScanMatchesPerTokenReference) {
  const Signature sig = sign_m(alice_);
  const PreparedBases prepared = prepared_for(sig);

  // Signer absent, at the front, in the middle, and at the end: the batched
  // scan must report exactly the index the per-token loop finds first.
  for (const std::size_t pos : {std::size_t{TokenScan::npos}, std::size_t{0},
                                std::size_t{3}, std::size_t{6}}) {
    std::vector<RevocationToken> url = fodder(7);
    if (pos != TokenScan::npos) url[pos] = {alice_.a};

    std::size_t reference = TokenScan::npos;
    for (std::size_t i = 0; i < url.size(); ++i) {
      if (groupsig::matches_token(prepared, sig, url[i])) {
        reference = i;
        break;
      }
    }
    EXPECT_EQ(reference, pos);
    EXPECT_EQ(groupsig::scan_tokens(prepared, sig, url), pos);
  }
}

TEST_F(ScanTest, ScanPaysOneEasyPartInversion) {
  const Signature sig = sign_m(alice_);
  const PreparedBases prepared = prepared_for(sig);
  const std::vector<RevocationToken> url = fodder(16);

  // The per-token reference pays one easy-part inversion per token...
  std::uint64_t before = curve::fp12_inverse_count();
  for (const RevocationToken& token : url)
    EXPECT_FALSE(groupsig::matches_token(prepared, sig, token));
  EXPECT_EQ(curve::fp12_inverse_count() - before, url.size());

  // ...the batched scan pays exactly one for the whole clean scan...
  before = curve::fp12_inverse_count();
  EXPECT_EQ(groupsig::scan_tokens(prepared, sig, url), TokenScan::npos);
  EXPECT_EQ(curve::fp12_inverse_count() - before, 1u);

  // ...and still exactly one when a token matches (the easy part is batched
  // before the per-token hard parts run).
  std::vector<RevocationToken> hit = url;
  hit[5] = {alice_.a};
  before = curve::fp12_inverse_count();
  EXPECT_EQ(groupsig::scan_tokens(prepared, sig, hit), 5u);
  EXPECT_EQ(curve::fp12_inverse_count() - before, 1u);
}

TEST_F(ScanTest, EmptyScanIsFree) {
  const Signature sig = sign_m(alice_);
  const PreparedBases prepared = prepared_for(sig);
  const std::uint64_t before = curve::fp12_inverse_count();
  EXPECT_EQ(groupsig::scan_tokens(prepared, sig, {}), TokenScan::npos);
  EXPECT_EQ(curve::fp12_inverse_count() - before, 0u);
}

TEST_F(ScanTest, ShardedScanMatchesSequential) {
  // Above kMinShardedUrlScan the pool path engages; a size that does not
  // divide evenly across shards exercises the contiguous-range split.
  const std::size_t n = kMinShardedUrlScan + 5;
  const std::vector<RevocationToken> clean = fodder(n);
  VerifyPool pool(4);

  const Signature by_alice = sign_m(alice_);
  const PreparedBases pa = prepared_for(by_alice);

  // Revoked hit at the first, middle, and last position: pooled and
  // sequential agree (set membership is order-independent, so early exit
  // cannot flip the verdict).
  for (const std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
    std::vector<RevocationToken> url = clean;
    url[pos] = {alice_.a};
    EXPECT_TRUE(url_scan_revoked(pa, by_alice, url, &pool));
    EXPECT_TRUE(url_scan_revoked(pa, by_alice, url, nullptr));
  }

  // A signer not on the list scans clean through the pool.
  const Signature by_bob = sign_m(bob_);
  const PreparedBases pb = prepared_for(by_bob);
  std::vector<RevocationToken> url = clean;
  url[n / 2] = {alice_.a};
  EXPECT_FALSE(url_scan_revoked(pb, by_bob, url, &pool));

  // A tampered signature matches nothing — pooled and sequential agree.
  Signature forged = by_alice;
  forged.t2 = forged.t2 + curve::Bn254::get().g1_gen;
  const PreparedBases pf = prepared_for(forged);
  EXPECT_FALSE(url_scan_revoked(pf, forged, url, &pool));
  EXPECT_FALSE(url_scan_revoked(pf, forged, url, nullptr));

  // Empty URL: nobody is revoked.
  EXPECT_FALSE(url_scan_revoked(pa, by_alice, {}, &pool));
}

}  // namespace
}  // namespace peace::proto
