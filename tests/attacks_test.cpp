// The attack analyses of Sec. V.A, executed rather than argued: bogus data
// injection (A1), phishing routers (A2), replays, revoked entities, and
// eavesdropper linkage (A3), plus the client-puzzle DoS defence (E8).
#include "mesh/adversary.hpp"

#include <gtest/gtest.h>

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

class AttacksTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  AttacksTest()
      : no_(crypto::Drbg::from_string("atk-no")),
        gm_(no_.register_group("city", 16, ttp_)),
        net_(sim_, crypto::Drbg::from_string("atk-net")) {}

  std::unique_ptr<proto::User> make_user(const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no_.params(), crypto::Drbg::from_string("atk-" + uid));
    user->complete_enrollment(gm_.enroll(uid, ttp_));
    return user;
  }

  proto::NetworkOperator no_;
  proto::TrustedThirdParty ttp_;
  proto::GroupManager gm_;
  Simulator sim_;
  MeshNetwork net_;
};

TEST_F(AttacksTest, A1_OutsiderBogusInjectionAllRejected) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  const auto beacon = net_.router(r).make_beacon(1000);
  BogusInjector outsider(crypto::Drbg::from_string("outsider"));
  EXPECT_EQ(outsider.inject(net_.router(r), beacon, 1001, 25), 0u);
  EXPECT_EQ(net_.router(r).stats().rejected_bad_signature, 25u);
}

TEST_F(AttacksTest, A1_RevokedUserCannotRejoin) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  const auto enrollment = gm_.enroll("revoked", ttp_);
  proto::User revoked("revoked", no_.params(),
                      crypto::Drbg::from_string("revoked-u"));
  revoked.complete_enrollment(enrollment);
  no_.revoke_user_key(enrollment.index, 100);
  net_.push_revocation_lists(no_.current_crl(), no_.current_url());

  for (int attempt = 0; attempt < 3; ++attempt) {
    const auto beacon = net_.router(r).make_beacon(1000 + attempt);
    auto m2 = revoked.process_beacon(beacon, 1000 + attempt);
    ASSERT_TRUE(m2.has_value());  // the revoked user can still *try*
    EXPECT_FALSE(
        net_.router(r).handle_access_request(*m2, 1001 + attempt).has_value());
  }
  EXPECT_EQ(net_.router(r).stats().rejected_revoked, 3u);
}

TEST_F(AttacksTest, A1_MalformedPointsRejectedAtParse) {
  // A1 variant: instead of garbage bytes, the adversary re-encodes a valid
  // M.2 with degenerate curve points. Parsing must reject them before any
  // pairing or DH computation sees them.
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  auto user = make_user("target");
  const auto beacon = net_.router(r).make_beacon(1000);
  auto m2 = user->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  EXPECT_NO_THROW(proto::AccessRequest::from_bytes(m2->to_bytes()));

  // Identity DH share: the session key would be derived from the identity.
  auto tampered = *m2;
  tampered.g_rj = curve::G1::infinity();
  EXPECT_THROW(proto::AccessRequest::from_bytes(tampered.to_bytes()), Error);

  // Identity signature component: degenerate pairing input.
  tampered = *m2;
  tampered.signature.t1 = curve::G1::infinity();
  EXPECT_THROW(proto::AccessRequest::from_bytes(tampered.to_bytes()), Error);

  // Valid twist-curve point outside the order-r subgroup as T_hat.
  const auto& bn = curve::Bn254::get();
  tampered = *m2;
  for (std::uint64_t i = 1; i < 64; ++i) {
    const math::Fp2 x = math::Fp2::from_u64(i, 0);
    const math::Fp2 rhs = x.square() * x + curve::G2Traits::b();
    math::Fp2 y;
    if (!rhs.sqrt(y)) continue;
    const curve::G2 point(x, y);
    if ((point * bn.r).is_infinity()) continue;
    tampered.signature.t_hat = point;
    break;
  }
  ASSERT_FALSE((tampered.signature.t_hat * bn.r).is_infinity());
  EXPECT_THROW(proto::AccessRequest::from_bytes(tampered.to_bytes()), Error);
}

TEST_F(AttacksTest, A1_ReplayedRequestsAllRejected) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_user({40, 0}, make_user("victim"));
  Replayer replayer;
  replayer.attach(net_);
  net_.start_beaconing(100, 500, 1100);
  sim_.run_until(2000);
  ASSERT_GT(replayer.captured(), 0u);
  // Immediate replay: replay cache blocks it. Later replay: timestamp too.
  EXPECT_EQ(replayer.replay_all(net_.router(r), sim_.now()), 0u);
  EXPECT_EQ(replayer.replay_all(net_.router(r), sim_.now() + 100000), 0u);
}

TEST_F(AttacksTest, A2_PhishingRouterAttractsNoUsers) {
  net_.add_router({0, 0}, no_, kFarFuture);
  proto::MeshRouter rogue = make_rogue_router(
      999, no_.params(), crypto::Drbg::from_string("rogue"));
  auto victim = make_user("victim");
  const auto beacon = rogue.make_beacon(1000);
  EXPECT_FALSE(victim->process_beacon(beacon, 1000).has_value());
  EXPECT_EQ(victim->stats().beacons_rejected, 1u);
}

TEST_F(AttacksTest, A2_RevokedRouterRejectedOnceCrlSeen) {
  // The paper's phishing window: a freshly revoked router can phish only
  // until the user sees a CRL update. Model both sides of the window.
  auto provision = no_.provision_router(5, kFarFuture);
  proto::MeshRouter revoked_router(5, provision.keypair,
                                   provision.certificate, no_.params(),
                                   crypto::Drbg::from_string("revoked-r"));
  revoked_router.install_revocation_lists(no_.current_crl(),
                                          no_.current_url());
  auto user = make_user("windowed");

  // Before revocation reaches the user: the beacon is accepted (the paper's
  // exposure window).
  const auto beacon_before = revoked_router.make_beacon(1000);
  EXPECT_TRUE(user->process_beacon(beacon_before, 1000).has_value());

  // NO revokes the router. The router itself keeps beaconing with its OLD
  // lists (it would not distribute the CRL naming itself) — but the user
  // has meanwhile learned the new CRL from any honest beacon.
  no_.revoke_router(5, 1500);
  auto honest = no_.provision_router(6, kFarFuture);
  proto::MeshRouter honest_router(6, honest.keypair, honest.certificate,
                                  no_.params(),
                                  crypto::Drbg::from_string("honest-r"));
  honest_router.install_revocation_lists(no_.current_crl(),
                                         no_.current_url());
  ASSERT_TRUE(
      user->process_beacon(honest_router.make_beacon(2000), 2000).has_value());

  // Now the revoked router's beacons are rejected by the CRL check.
  const auto beacon_after = revoked_router.make_beacon(3000);
  EXPECT_FALSE(user->process_beacon(beacon_after, 3000).has_value());
}

TEST_F(AttacksTest, A3_EavesdropperSeesNoLinkableFields) {
  net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_user({40, 0}, make_user("alice-the-lawyer"));
  net_.add_user({50, 10}, make_user("bob-the-doctor"));
  Eavesdropper eve;
  eve.attach(net_);
  net_.start_beaconing(100, 400, 2100);
  sim_.run_until(4000);

  ASSERT_GT(eve.access_requests_seen(), 0u);
  // Fresh randomness everywhere: no protocol field repeats across requests.
  EXPECT_EQ(eve.repeated_field_count(), 0u);
  // No identity string ever crossed the air.
  EXPECT_FALSE(eve.saw_bytes(as_bytes("alice-the-lawyer")));
  EXPECT_FALSE(eve.saw_bytes(as_bytes("bob-the-doctor")));
  // No plaintext recovered from data frames.
  EXPECT_TRUE(eve.recovered_plaintexts().empty());
}

TEST_F(AttacksTest, A3_EavesdropperCannotReadRelayedData) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId near = net_.add_user({60, 0}, make_user("near"));
  const NodeId far = net_.add_user({130, 0}, make_user("far"));
  (void)near;
  Eavesdropper eve;
  eve.attach(net_);
  net_.start_beaconing(100, 500, 1100);
  sim_.run_until(2000);
  net_.establish_peer_links();
  sim_.run_until(2500);
  ASSERT_TRUE(net_.send_data(far, as_bytes("my secret medical record")));
  // The payload crossed two radio hops; the eavesdropper saw every frame
  // yet never the plaintext.
  EXPECT_FALSE(eve.saw_bytes(as_bytes("my secret medical record")));
}

TEST_F(AttacksTest, A3_CompromisedRouterCannotDeanonymize) {
  // Threat model III.B: the adversary may compromise mesh routers. A
  // compromised router sees everything a legitimate router sees — valid
  // M.2s, session keys — but holds no grt, so it can neither identify the
  // signer nor link two sessions of the same user.
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  auto victim = make_user("victim-of-insider");

  // The router (insider) collects two sessions from the same user.
  const auto b1 = net_.router(r).make_beacon(1000);
  auto m2a = victim->process_beacon(b1, 1000);
  ASSERT_TRUE(net_.router(r).handle_access_request(*m2a, 1001).has_value());
  const auto b2 = net_.router(r).make_beacon(2000);
  auto m2b = victim->process_beacon(b2, 2000);
  ASSERT_TRUE(net_.router(r).handle_access_request(*m2b, 2001).has_value());

  // Everything the insider can index on is fresh across the two sessions.
  EXPECT_NE(curve::g1_to_bytes(m2a->g_rj), curve::g1_to_bytes(m2b->g_rj));
  EXPECT_NE(curve::g1_to_bytes(m2a->signature.t1),
            curve::g1_to_bytes(m2b->signature.t1));
  EXPECT_NE(curve::g1_to_bytes(m2a->signature.t2),
            curve::g1_to_bytes(m2b->signature.t2));
  // Even with another member's full gsk (insider collusion), Eq.3 against
  // that credential fails — only NO's grt can open.
  auto accomplice_enrollment = gm_.enroll("accomplice", ttp_);
  proto::User accomplice("accomplice", no_.params(),
                         crypto::Drbg::from_string("accomplice"));
  accomplice.complete_enrollment(accomplice_enrollment);
  const auto& acc_key = accomplice.credential(gm_.id());
  EXPECT_FALSE(groupsig::matches_token(no_.params().gpk,
                                       m2a->signed_payload(), m2a->signature,
                                       {acc_key.a}));
}

TEST_F(AttacksTest, ActiveMitmCannotHijackHandshake) {
  // An active adversary rewriting messages in flight can deny service but
  // never complete or redirect a handshake.
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  auto user = make_user("mitm-target");
  const auto beacon = net_.router(r).make_beacon(1000);
  auto m2 = user->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());

  // Substitute the adversary's own DH share into M.2: signature breaks.
  crypto::Drbg rng = crypto::Drbg::from_string("mitm");
  proto::AccessRequest hijacked = *m2;
  hijacked.g_rj = curve::Bn254::get().g1_gen * curve::random_fr(rng);
  EXPECT_FALSE(net_.router(r).handle_access_request(hijacked, 1001).has_value());

  // Let the genuine M.2 through, then forge the confirm toward the user
  // with an adversary-known key: the user rejects it, no session forms.
  auto outcome = net_.router(r).handle_access_request(*m2, 1002);
  ASSERT_TRUE(outcome.has_value());
  proto::AccessConfirm forged = outcome->confirm;
  forged.ciphertext = rng.bytes(forged.ciphertext.size());
  EXPECT_FALSE(user->process_access_confirm(forged).has_value());
  // The honest confirm still completes afterwards (no state poisoning).
  EXPECT_TRUE(user->process_access_confirm(outcome->confirm).has_value());
}

TEST_F(AttacksTest, E8_PuzzleGatesExpensiveWork) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  DosFlooder flooder(crypto::Drbg::from_string("flooder"));

  // Without the defence: every bogus request costs the router a signature
  // verification.
  auto beacon = net_.router(r).make_beacon(1000);
  auto undefended = flooder.flood(net_.router(r), beacon, 1001, 30,
                                  /*solve_puzzles=*/false);
  EXPECT_EQ(undefended.accepted, 0u);
  EXPECT_EQ(undefended.router_sig_verifications, 30u);

  // Defence on, attacker refuses to pay: requests die at the puzzle check.
  net_.router(r).set_under_attack(true, /*difficulty=*/10);
  beacon = net_.router(r).make_beacon(2000);
  auto cheap = flooder.flood(net_.router(r), beacon, 2001, 30,
                             /*solve_puzzles=*/false);
  EXPECT_EQ(cheap.router_sig_verifications, 0u);
  EXPECT_EQ(cheap.accepted, 0u);

  // Attacker pays: can induce work again, but each request now costs ~2^10
  // hashes of attacker compute, throttled by its budget.
  auto paying = flooder.flood(net_.router(r), beacon, 2002, 30,
                              /*solve_puzzles=*/true,
                              /*hash_budget=*/10 * 1024);
  EXPECT_LE(paying.sent, 10u);  // budget capped the flood rate
  EXPECT_GT(paying.attacker_hash_work, 0u);
  EXPECT_EQ(paying.accepted, 0u);
}

TEST_F(AttacksTest, E8_LegitimateUserStillConnectsUnderAttack) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  net_.router(r).set_under_attack(true, /*difficulty=*/8);
  auto user = make_user("patient-user");
  const auto beacon = net_.router(r).make_beacon(1000);
  auto m2 = user->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  ASSERT_TRUE(m2->puzzle_solution.has_value());
  EXPECT_TRUE(net_.router(r).handle_access_request(*m2, 1001).has_value());
  EXPECT_GT(user->stats().puzzle_hashes, 0u);
}

}  // namespace
}  // namespace peace::mesh
