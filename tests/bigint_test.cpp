#include "math/bigint.hpp"

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"

namespace peace::math {
namespace {

TEST(BigInt, DecimalRoundTrip) {
  const char* cases[] = {
      "0", "1", "18446744073709551616",
      "340282366920938463463374607431768211455",
      "179769313486231590772930519078902473361797697894230657273430081157732675805500963132708477322407536021120113879871393357658789768814416622492847430639474124377767893424865485276302219601246094119453082952085005768838150682342462881473913110540827237163350510684586298239947245938479716304835356329624224137216"};
  for (const char* c : cases) EXPECT_EQ(BigInt::from_dec(c).to_dec(), c);
}

TEST(BigInt, AddSub) {
  const BigInt a = BigInt::from_dec("123456789012345678901234567890");
  const BigInt b = BigInt::from_dec("987654321098765432109876543210");
  EXPECT_EQ((a + b).to_dec(), "1111111110111111111011111111100");
  EXPECT_EQ((b - a).to_dec(), "864197532086419753208641975320");
  EXPECT_THROW(a - b, Error);
}

TEST(BigInt, Mul) {
  const BigInt a = BigInt::from_dec("123456789");
  const BigInt b = BigInt::from_dec("987654321");
  EXPECT_EQ((a * b).to_dec(), "121932631112635269");
  EXPECT_TRUE((a * BigInt()).is_zero());
}

TEST(BigInt, DivMod) {
  const BigInt a = BigInt::from_dec("10000000000000000000000000000000000000001");
  const BigInt b = BigInt::from_dec("9999999999999");
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ((q * b + r), a);
  EXPECT_LT(BigInt::cmp(r, b), 0);
  EXPECT_THROW(a / BigInt(), Error);
}

TEST(BigInt, DivSmallCases) {
  EXPECT_EQ((BigInt(100) / BigInt(7)).to_u64(), 14u);
  EXPECT_EQ((BigInt(100) % BigInt(7)).to_u64(), 2u);
  EXPECT_EQ((BigInt(5) / BigInt(100)).to_u64(), 0u);
  EXPECT_EQ((BigInt(5) % BigInt(100)).to_u64(), 5u);
}

TEST(BigInt, Shifts) {
  const BigInt a = BigInt::from_dec("123456789012345678901234567890");
  EXPECT_EQ(((a << 67) >> 67), a);
  EXPECT_EQ((BigInt(1) << 128).to_dec(), "340282366920938463463374607431768211456");
  EXPECT_TRUE((BigInt(1) >> 1).is_zero());
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt().bit_length(), 0u);
  EXPECT_EQ(BigInt(1).bit_length(), 1u);
  EXPECT_EQ(BigInt(255).bit_length(), 8u);
  EXPECT_EQ((BigInt(1) << 130).bit_length(), 131u);
}

TEST(BigInt, ModPow) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigInt::mod_pow(BigInt(2), BigInt(10), BigInt(1000)).to_u64(), 24u);
  // Fermat: a^(p-1) = 1 mod p for prime p = 1000003.
  const BigInt p(1000003);
  EXPECT_EQ(BigInt::mod_pow(BigInt(123456), p - BigInt(1), p).to_u64(), 1u);
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(36)).to_u64(), 12u);
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(31)).to_u64(), 1u);
  EXPECT_EQ(BigInt::gcd(BigInt(), BigInt(5)).to_u64(), 5u);
}

TEST(BigInt, ModInverse) {
  const BigInt m(97);
  for (std::uint64_t a = 1; a < 97; ++a) {
    const BigInt inv = BigInt::mod_inverse(BigInt(a), m);
    EXPECT_EQ(((BigInt(a) * inv) % m).to_u64(), 1u) << a;
  }
  EXPECT_THROW(BigInt::mod_inverse(BigInt(6), BigInt(9)), Error);
}

TEST(BigInt, ModInverseLarge) {
  const BigInt m = BigInt::from_dec(
      "21888242871839275222246405745257275088548364400416034343698204186575808495617");
  const BigInt a = BigInt::from_dec("1234567890123456789012345678901234567890");
  const BigInt inv = BigInt::mod_inverse(a, m);
  EXPECT_EQ(((a * inv) % m).to_u64(), 1u);
}

TEST(BigInt, BytesRoundTrip) {
  const BigInt a = BigInt::from_dec("1208925819614629174706175");  // 2^80-1
  const Bytes b = a.to_bytes();
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(BigInt::from_bytes(b), a);
  EXPECT_EQ(a.to_bytes(16).size(), 16u);
  EXPECT_EQ(BigInt::from_bytes(a.to_bytes(16)), a);
}

TEST(BigInt, U256RoundTrip) {
  const U256 v = U256::from_dec(
      "21888242871839275222246405745257275088696311157297823662689037894645226208583");
  EXPECT_EQ(BigInt::from_u256(v).to_u256(), v);
  EXPECT_THROW((BigInt(1) << 256).to_u256(), Error);
}

TEST(BigInt, MillerRabinKnownPrimes) {
  crypto::Drbg rng = crypto::Drbg::from_string("miller-rabin-test");
  auto rand_below = [&rng](const BigInt& n) {
    return [&rng, n]() {
      const std::size_t len = (n.bit_length() + 7) / 8;
      for (;;) {
        const BigInt cand = BigInt::from_bytes(rng.bytes(len));
        if (BigInt::cmp(cand, BigInt(2)) >= 0 &&
            BigInt::cmp(cand, n - BigInt(2)) <= 0)
          return cand;
      }
    };
  };
  const char* primes[] = {"2", "3", "5", "104729", "1000003",
                          "170141183460469231731687303715884105727"};  // 2^127-1
  for (const char* p : primes) {
    const BigInt n = BigInt::from_dec(p);
    EXPECT_TRUE(BigInt::is_probable_prime(n, 20, rand_below(n))) << p;
  }
  const char* composites[] = {"4", "1000005", "561", "41041",  // Carmichaels
                              "170141183460469231731687303715884105725"};
  for (const char* c : composites) {
    const BigInt n = BigInt::from_dec(c);
    EXPECT_FALSE(BigInt::is_probable_prime(n, 20, rand_below(n))) << c;
  }
}

class BigIntDivProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntDivProperty, QuotientRemainderIdentity) {
  crypto::Drbg rng = crypto::Drbg::from_string("bigint-div", GetParam());
  const BigInt a = BigInt::from_bytes(rng.bytes(1 + GetParam() * 7));
  const BigInt b = BigInt::from_bytes(rng.bytes(1 + GetParam() * 3)) + BigInt(1);
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(BigInt::cmp(r, b), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BigIntDivProperty, ::testing::Range(1, 20));

}  // namespace
}  // namespace peace::math
