// Baselines: RSA (the paper's signature-size comparator) and the
// non-anonymous plain-certificate framework.
#include <gtest/gtest.h>

#include "baseline/plain_auth.hpp"
#include "baseline/rsa.hpp"

namespace peace::baseline {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  // Key generation is expensive; share one 1024-bit key across tests.
  static RsaKeyPair& shared_key() {
    static RsaKeyPair kp = [] {
      crypto::Drbg rng = crypto::Drbg::from_string("rsa-shared");
      return RsaKeyPair::generate(1024, rng);
    }();
    return kp;
  }
};

TEST_F(RsaTest, GeneratePrimeIsOdd) {
  crypto::Drbg rng = crypto::Drbg::from_string("prime");
  const BigInt p = generate_prime(128, rng, 10);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  // Certify with an independent Miller-Rabin run.
  crypto::Drbg rng2 = crypto::Drbg::from_string("prime-check");
  auto rand_below = [&rng2, &p]() {
    for (;;) {
      const BigInt c = BigInt::from_bytes(rng2.bytes(16));
      if (BigInt::cmp(c, BigInt(2)) >= 0 && BigInt::cmp(c, p - BigInt(2)) <= 0)
        return c;
    }
  };
  EXPECT_TRUE(BigInt::is_probable_prime(p, 20, rand_below));
}

TEST_F(RsaTest, SignatureSizeIs128Bytes) {
  EXPECT_EQ(shared_key().modulus_bytes(), 128u);
  EXPECT_EQ(shared_key().modulus().bit_length(), 1024u);
  const Bytes sig = shared_key().sign(as_bytes("msg"));
  EXPECT_EQ(sig.size(), 128u);  // the paper's comparison point
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  const Bytes sig = shared_key().sign(as_bytes("attack at dawn"));
  EXPECT_TRUE(shared_key().verify(as_bytes("attack at dawn"), sig));
  EXPECT_FALSE(shared_key().verify(as_bytes("attack at dusk"), sig));
}

TEST_F(RsaTest, TamperedSignatureRejected) {
  Bytes sig = shared_key().sign(as_bytes("m"));
  sig[5] ^= 1;
  EXPECT_FALSE(shared_key().verify(as_bytes("m"), sig));
  EXPECT_FALSE(shared_key().verify(as_bytes("m"), Bytes(10, 0)));
  EXPECT_FALSE(shared_key().verify(as_bytes("m"), Bytes(128, 0xff)));
}

TEST_F(RsaTest, DistinctKeysDontInterop) {
  crypto::Drbg rng = crypto::Drbg::from_string("rsa-other");
  const RsaKeyPair other = RsaKeyPair::generate(512, rng);
  const Bytes sig = other.sign(as_bytes("m"));
  EXPECT_TRUE(other.verify(as_bytes("m"), sig));
  EXPECT_FALSE(shared_key().verify(as_bytes("m"), sig));
}

TEST_F(RsaTest, ParameterValidation) {
  crypto::Drbg rng = crypto::Drbg::from_string("rsa-bad");
  EXPECT_THROW(RsaKeyPair::generate(128, rng), Error);
  EXPECT_THROW(RsaKeyPair::generate(513, rng), Error);
  EXPECT_THROW(generate_prime(8, rng), Error);
}

class PlainAuthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  PlainAuthTest()
      : rng_(crypto::Drbg::from_string("plain")),
        authority_(crypto::Drbg::from_string("plain-authority")) {}

  crypto::Drbg rng_;
  PlainAuthority authority_;
};

TEST_F(PlainAuthTest, RoundTrip) {
  const auto user = authority_.issue_user("alice", 1000000);
  const G1 g_rj = curve::Bn254::get().g1_gen * curve::random_fr(rng_);
  const G1 g_rr = curve::Bn254::get().g1_gen * curve::random_fr(rng_);
  const auto req = make_plain_request(user, g_rj, g_rr, 1000, rng_);
  const auto uid = verify_plain_request(authority_, req, 1001, 5000);
  ASSERT_TRUE(uid.has_value());
  EXPECT_EQ(*uid, "alice");
}

TEST_F(PlainAuthTest, IdentityIsOnTheWire) {
  // The contrast with PEACE: the uid is literally in the serialized bytes.
  const auto user = authority_.issue_user("alice-identity", 1000000);
  const G1 g = curve::Bn254::get().g1_gen;
  const auto req = make_plain_request(user, g, g, 1000, rng_);
  const Bytes wire = req.to_bytes();
  const std::string s(wire.begin(), wire.end());
  EXPECT_NE(s.find("alice-identity"), std::string::npos);
}

TEST_F(PlainAuthTest, RevocationByUid) {
  const auto user = authority_.issue_user("bob", 1000000);
  authority_.revoke("bob");
  const G1 g = curve::Bn254::get().g1_gen;
  const auto req = make_plain_request(user, g, g, 1000, rng_);
  EXPECT_FALSE(verify_plain_request(authority_, req, 1001, 5000).has_value());
}

TEST_F(PlainAuthTest, ExpiryAndStaleness) {
  const auto user = authority_.issue_user("carol", 2000);
  const G1 g = curve::Bn254::get().g1_gen;
  const auto req = make_plain_request(user, g, g, 1000, rng_);
  EXPECT_TRUE(verify_plain_request(authority_, req, 1001, 5000).has_value());
  EXPECT_FALSE(verify_plain_request(authority_, req, 3000, 5000).has_value());
  EXPECT_FALSE(verify_plain_request(authority_, req, 90000, 500).has_value());
}

TEST_F(PlainAuthTest, ForgedCertificateRejected) {
  crypto::Drbg rng = crypto::Drbg::from_string("mallory");
  auto mallory_kp = curve::EcdsaKeyPair::generate(rng);
  PlainUserCertificate cert;
  cert.uid = "mallory";
  cert.public_key = mallory_kp.public_key();
  cert.expires_at = 1000000;
  cert.signature = mallory_kp.sign(cert.signed_payload(), rng);  // self-signed
  PlainAuthority::IssuedUser fake{mallory_kp, cert};
  const G1 g = curve::Bn254::get().g1_gen;
  const auto req = make_plain_request(fake, g, g, 1000, rng);
  EXPECT_FALSE(verify_plain_request(authority_, req, 1001, 5000).has_value());
}

TEST_F(PlainAuthTest, TamperedRequestRejected) {
  const auto user = authority_.issue_user("dave", 1000000);
  const G1 g = curve::Bn254::get().g1_gen;
  auto req = make_plain_request(user, g, g, 1000, rng_);
  req.ts += 1;
  EXPECT_FALSE(verify_plain_request(authority_, req, 1001, 5000).has_value());
}

TEST_F(PlainAuthTest, SerializationRoundTrip) {
  const auto user = authority_.issue_user("erin", 1000000);
  const G1 g = curve::Bn254::get().g1_gen;
  const auto req = make_plain_request(user, g, g, 1000, rng_);
  const auto again = PlainAccessRequest::from_bytes(req.to_bytes());
  EXPECT_EQ(again.to_bytes(), req.to_bytes());
  EXPECT_TRUE(verify_plain_request(authority_, again, 1001, 5000).has_value());
}

}  // namespace
}  // namespace peace::baseline
