// The sophisticated-privacy model (paper Sec. III.C): a user's identity is
// multi-faceted; they interact with the WMN in different roles and a
// dispute is attributed only to the role's group. These tests exercise a
// user holding several credentials and choosing a role per session.
#include <gtest/gtest.h>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

class RolesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  RolesTest()
      : no_(crypto::Drbg::from_string("roles-no")),
        carol_("carol", no_.params(), crypto::Drbg::from_string("roles-c")) {
    employer_ =
        std::make_unique<GroupManager>(no_.register_group("employer", 4, ttp_));
    university_ = std::make_unique<GroupManager>(
        no_.register_group("university", 4, ttp_));
    golf_ = std::make_unique<GroupManager>(no_.register_group("golf", 4, ttp_));

    auto provision = no_.provision_router(1, kFarFuture);
    router_ = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("roles-r"));
    router_->install_revocation_lists(no_.current_crl(), no_.current_url());

    carol_.complete_enrollment(employer_->enroll("carol", ttp_));
    carol_.complete_enrollment(university_->enroll("carol", ttp_));
    carol_.complete_enrollment(golf_->enroll("carol", ttp_));
  }

  std::optional<AccessRequest> connect_via(GroupId role, Timestamp now) {
    const auto beacon = router_->make_beacon(now);
    auto m2 = carol_.process_beacon(beacon, now, role);
    if (m2.has_value()) {
      EXPECT_TRUE(router_->handle_access_request(*m2, now + 1).has_value());
    }
    return m2;
  }

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> employer_, university_, golf_;
  std::unique_ptr<MeshRouter> router_;
  User carol_;
};

TEST_F(RolesTest, ThreeRolesEnrolled) {
  EXPECT_EQ(carol_.enrolled_groups().size(), 3u);
  for (const GroupManager* gm :
       {employer_.get(), university_.get(), golf_.get()}) {
    EXPECT_TRUE(carol_.credential(gm->id()).is_valid(no_.params().gpk));
  }
}

TEST_F(RolesTest, EachRoleConnectsAndAuditsToItsOwnGroup) {
  Timestamp now = 1000;
  for (const GroupManager* gm :
       {employer_.get(), university_.get(), golf_.get()}) {
    auto m2 = connect_via(gm->id(), now);
    ASSERT_TRUE(m2.has_value());
    const auto audit = no_.audit(*m2);
    ASSERT_TRUE(audit.has_value());
    EXPECT_EQ(audit->group_id, gm->id());
    now += 1000;
  }
}

TEST_F(RolesTest, RolesAreMutuallyUnlinkableByAudit) {
  // Three sessions under three roles pin three *different* credentials —
  // NO cannot tell they belong to the same person.
  auto e = connect_via(employer_->id(), 1000);
  auto u = connect_via(university_->id(), 2000);
  auto g = connect_via(golf_->id(), 3000);
  const auto ae = no_.audit(*e);
  const auto au = no_.audit(*u);
  const auto ag = no_.audit(*g);
  EXPECT_NE(ae->token.a, au->token.a);
  EXPECT_NE(au->token.a, ag->token.a);
  EXPECT_NE(ae->token.a, ag->token.a);
}

TEST_F(RolesTest, RevokingOneRoleLeavesOthersUsable) {
  // The golf club kicks carol out; her employee and student roles work on.
  auto g = connect_via(golf_->id(), 1000);
  const auto audit = no_.audit(*g);
  no_.revoke_user_key(audit->index, 1500);
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());

  // Golf role now rejected.
  const auto beacon = router_->make_beacon(2000);
  auto m2 = carol_.process_beacon(beacon, 2000, golf_->id());
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(router_->handle_access_request(*m2, 2001).has_value());

  // Employer role unaffected.
  EXPECT_TRUE(connect_via(employer_->id(), 3000).has_value());
}

TEST_F(RolesTest, LawTraceResolvesThroughTheRoleGroupOnly) {
  auto u = connect_via(university_->id(), 1000);
  // Only the university GM can complete the trace for this session.
  EXPECT_FALSE(
      LawAuthority::trace(no_, {employer_.get(), golf_.get()}, *u).has_value());
  const auto traced = LawAuthority::trace(no_, {university_.get()}, *u);
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->uid, "carol");
  EXPECT_EQ(traced->group_id, university_->id());
}

TEST_F(RolesTest, UnknownRoleThrows) {
  const auto beacon = router_->make_beacon(1000);
  EXPECT_THROW(carol_.process_beacon(beacon, 1000, /*via_group=*/999), Error);
  EXPECT_THROW(carol_.credential(999), Error);
}

TEST_F(RolesTest, DefaultRoleIsFirstEnrolled) {
  const auto beacon = router_->make_beacon(1000);
  auto m2 = carol_.process_beacon(beacon, 1000, /*via_group=*/0);
  ASSERT_TRUE(m2.has_value());
  const auto audit = no_.audit(*m2);
  ASSERT_TRUE(audit.has_value());
  EXPECT_EQ(audit->group_id, employer_->id());  // lowest group id
}

TEST_F(RolesTest, PeerHandshakeCanUseDifferentRolesPerSide) {
  User dave("dave", no_.params(), crypto::Drbg::from_string("roles-d"));
  dave.complete_enrollment(golf_->enroll("dave", ttp_));
  const auto g1 = curve::Bn254::get().g1_gen;
  const PeerHello hello = carol_.make_peer_hello(g1, 1000, university_->id());
  auto reply = dave.process_peer_hello(hello, 1010, golf_->id());
  ASSERT_TRUE(reply.has_value());
  auto established = carol_.process_peer_reply(*reply, 1020);
  ASSERT_TRUE(established.has_value());
  EXPECT_TRUE(dave.process_peer_confirm(established->confirm).has_value());
}

TEST_F(RolesTest, UserWithNoCredentialCannotParticipate) {
  User nobody("nobody", no_.params(), crypto::Drbg::from_string("roles-n"));
  const auto beacon = router_->make_beacon(1000);
  EXPECT_THROW(nobody.process_beacon(beacon, 1000), Error);
  EXPECT_THROW(nobody.make_peer_hello(curve::Bn254::get().g1_gen, 1000),
               Error);
}

}  // namespace
}  // namespace peace::proto
