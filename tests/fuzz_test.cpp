// Robustness of every wire decoder against hostile bytes: random buffers
// and bit-flipped valid messages must either parse cleanly or throw
// peace::Error — never crash, never read out of bounds, and never produce
// a message that verifies.
#include <gtest/gtest.h>

#include "baseline/plain_auth.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

template <typename Parser>
void expect_no_crash(BytesView data, Parser&& parse) {
  try {
    parse(data);
  } catch (const Error&) {
    // rejecting is fine; crashing or UB is not.
  }
}

TEST_P(FuzzTest, RandomBytesDontCrashDecoders) {
  crypto::Drbg rng = crypto::Drbg::from_string("fuzz-random", GetParam());
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(600));
    expect_no_crash(junk, [](BytesView d) { BeaconMessage::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { AccessRequest::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { AccessConfirm::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { PeerHello::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { PeerReply::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { PeerConfirm::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { DataFrame::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { RouterCertificate::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { SignedRevocationList::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { RLDelta::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { RLDeltaAnnounce::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { RLResyncRequest::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { RLResyncResponse::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { groupsig::Signature::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { curve::g1_from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { curve::g2_from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) {
      baseline::PlainAccessRequest::from_bytes(d);
    });
  }
}

struct FuzzWorld {
  FuzzWorld() : no(crypto::Drbg::from_string("fuzz-no")) {
    gm = std::make_unique<GroupManager>(no.register_group("G", 4, ttp));
    auto provision = no.provision_router(1, ~Timestamp{0});
    router = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no.params(),
        crypto::Drbg::from_string("fuzz-router"));
    router->install_revocation_lists(no.current_crl(), no.current_url());
    user = std::make_unique<User>("fuzz-user", no.params(),
                                  crypto::Drbg::from_string("fuzz-u"));
    user->complete_enrollment(gm->enroll("fuzz-user", ttp));
    user2 = std::make_unique<User>("fuzz-user2", no.params(),
                                   crypto::Drbg::from_string("fuzz-u2"));
    user2->complete_enrollment(gm->enroll("fuzz-user2", ttp));
  }
  static FuzzWorld& get() {
    static FuzzWorld w;
    return w;
  }
  NetworkOperator no;
  TrustedThirdParty ttp;
  std::unique_ptr<GroupManager> gm;
  std::unique_ptr<MeshRouter> router;
  std::unique_ptr<User> user;
  std::unique_ptr<User> user2;
};

TEST_P(FuzzTest, BitFlippedAccessRequestsNeverAccepted) {
  FuzzWorld& w = FuzzWorld::get();
  crypto::Drbg rng = crypto::Drbg::from_string("fuzz-flip", GetParam());
  const Timestamp now = 1000 + static_cast<Timestamp>(GetParam()) * 100;
  const auto beacon = w.router->make_beacon(now);
  auto m2 = w.user->process_beacon(beacon, now);
  ASSERT_TRUE(m2.has_value());
  const Bytes wire = m2->to_bytes();

  for (int i = 0; i < 30; ++i) {
    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      const AccessRequest parsed = AccessRequest::from_bytes(mutated);
      // If it parses, the router must reject it (bad signature / unknown
      // beacon / wrong timestamp) — it must never establish a session.
      EXPECT_FALSE(
          w.router->handle_access_request(parsed, now + 1).has_value());
    } catch (const Error&) {
    }
  }
  // The pristine request still works afterwards (state not corrupted).
  EXPECT_TRUE(w.router
                  ->handle_access_request(AccessRequest::from_bytes(wire),
                                          now + 2)
                  .has_value());
}

/// Flips bits in `wire` `rounds` times; every mutant must either fail to
/// parse (peace::Error) or, once parsed, be rejected by `consume` without
/// mutating any state `consume` guards.
template <typename Reparse, typename Consume>
void flip_and_feed(const Bytes& wire, crypto::Drbg& rng, int rounds,
                   Reparse&& reparse, Consume&& consume) {
  for (int i = 0; i < rounds; ++i) {
    Bytes mutated = wire;
    const std::size_t byte = rng.uniform(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    if (mutated == wire) continue;  // xor happened to cancel — not a mutant
    try {
      consume(reparse(BytesView{mutated}));
    } catch (const Error&) {
      // clean rejection at the decoder
    }
  }
}

// Every wire kind in the protocol, serialized, bit-flipped, and fed back to
// its consumer: nothing may escape as a non-Error exception, and the
// consumer's state must be byte-for-byte as usable afterwards as before —
// proven by completing the pristine exchange after the barrage.
TEST_P(FuzzTest, BitFlipsAcrossAllWireKindsRejectWithoutStateChange) {
  FuzzWorld& w = FuzzWorld::get();
  crypto::Drbg rng = crypto::Drbg::from_string("fuzz-kinds", GetParam());
  const Timestamp now = 500'000 + static_cast<Timestamp>(GetParam()) * 1000;

  // --- access handshake: M.1, M.2, M.3, data ------------------------------
  const auto beacon = w.router->make_beacon(now);
  flip_and_feed(
      beacon.to_bytes(), rng, 20,
      [](BytesView d) { return BeaconMessage::from_bytes(d); },
      [&](const BeaconMessage& b) {
        // A mutated beacon must never yield an access request (bad router
        // signature / certificate), and must not clobber the real attempt.
        EXPECT_FALSE(w.user2->process_beacon(b, now).has_value());
      });

  auto m2 = w.user->process_beacon(beacon, now);
  ASSERT_TRUE(m2.has_value());
  const std::size_t pending_before = w.user->pending_access_size();
  const std::uint64_t accepted_before = w.router->stats().accepted;
  const std::size_t sessions_before = w.router->session_count();
  flip_and_feed(
      m2->to_bytes(), rng, 20,
      [](BytesView d) { return AccessRequest::from_bytes(d); },
      [&](const AccessRequest& r) {
        EXPECT_FALSE(w.router->handle_access_request(r, now + 1).has_value());
      });
  EXPECT_EQ(w.router->stats().accepted, accepted_before);
  EXPECT_EQ(w.router->session_count(), sessions_before);

  auto outcome = w.router->handle_access_request(*m2, now + 1);
  ASSERT_TRUE(outcome.has_value());
  const std::uint64_t established_before = w.user->stats().sessions_established;
  flip_and_feed(
      outcome->confirm.to_bytes(), rng, 20,
      [](BytesView d) { return AccessConfirm::from_bytes(d); },
      [&](const AccessConfirm& c) {
        EXPECT_FALSE(w.user->process_access_confirm(c).has_value());
      });
  // The barrage consumed nothing: the pending share survives and the
  // pristine M.3 still completes.
  EXPECT_EQ(w.user->pending_access_size(), pending_before);
  EXPECT_EQ(w.user->stats().sessions_established, established_before);
  auto session = w.user->process_access_confirm(outcome->confirm);
  ASSERT_TRUE(session.has_value());

  Session* router_side = w.router->session(outcome->session_id);
  ASSERT_NE(router_side, nullptr);
  const DataFrame frame = session->seal(as_bytes("payload under fire"));
  flip_and_feed(
      frame.to_bytes(), rng, 20,
      [](BytesView d) { return DataFrame::from_bytes(d); },
      [&](const DataFrame& f) {
        EXPECT_FALSE(router_side->open(f).has_value());
      });
  EXPECT_TRUE(router_side->open(frame).has_value());  // AEAD state intact

  // --- peer handshake: M~.1, M~.2, M~.3 -----------------------------------
  const PeerHello hello = w.user->make_peer_hello(beacon.g, now);
  flip_and_feed(
      hello.to_bytes(), rng, 20,
      [](BytesView d) { return PeerHello::from_bytes(d); },
      [&](const PeerHello& h) {
        EXPECT_FALSE(w.user2->process_peer_hello(h, now).has_value());
      });
  auto reply = w.user2->process_peer_hello(hello, now);
  ASSERT_TRUE(reply.has_value());

  flip_and_feed(
      reply->to_bytes(), rng, 20,
      [](BytesView d) { return PeerReply::from_bytes(d); },
      [&](const PeerReply& r) {
        EXPECT_FALSE(w.user->process_peer_reply(r, now + 1).has_value());
      });
  auto established = w.user->process_peer_reply(*reply, now + 1);
  ASSERT_TRUE(established.has_value());

  const std::uint64_t peer_before = w.user2->stats().peer_sessions_established;
  flip_and_feed(
      established->confirm.to_bytes(), rng, 20,
      [](BytesView d) { return PeerConfirm::from_bytes(d); },
      [&](const PeerConfirm& c) {
        EXPECT_FALSE(w.user2->process_peer_confirm(c).has_value());
      });
  EXPECT_EQ(w.user2->stats().peer_sessions_established, peer_before);
  EXPECT_TRUE(w.user2->process_peer_confirm(established->confirm).has_value());

  // --- revocation distribution: lists, deltas, resync ---------------------
  w.no.revoke_router(99, now);  // no-op after the first seed — chain stays
  const auto deltas = w.no.deltas_since(ListKind::kCrl, 0);
  ASSERT_FALSE(deltas.empty());
  flip_and_feed(
      deltas.back().to_bytes(), rng, 20,
      [](BytesView d) { return RLDelta::from_bytes(d); },
      [&](const RLDelta& d) {
        // A tampered delta may at worst trigger a resync request — it must
        // never install (signature over the delta payload fails).
        (void)w.router->handle_rl_announce(RLDeltaAnnounce{{d}});
      });
  flip_and_feed(
      w.no.make_delta_announcement(0, 0).to_bytes(), rng, 20,
      [](BytesView d) { return RLDeltaAnnounce::from_bytes(d); },
      [&](const RLDeltaAnnounce& a) { (void)w.router->handle_rl_announce(a); });

  const RLResyncRequest req{ListKind::kCrl, 0};
  flip_and_feed(
      req.to_bytes(), rng, 20,
      [](BytesView d) { return RLResyncRequest::from_bytes(d); },
      [&](const RLResyncRequest& r) { (void)w.no.handle_resync(r); });
  flip_and_feed(
      w.no.handle_resync(req).to_bytes(), rng, 20,
      [](BytesView d) { return RLResyncResponse::from_bytes(d); },
      [&](const RLResyncResponse&) {});
  flip_and_feed(
      w.no.current_crl().to_bytes(), rng, 20,
      [](BytesView d) { return SignedRevocationList::from_bytes(d); },
      [&](const SignedRevocationList& l) {
        // Tampered lists must not install over the authentic ones.
        w.router->install_revocation_lists(l, l);
      });
  flip_and_feed(
      beacon.certificate.to_bytes(), rng, 20,
      [](BytesView d) { return RouterCertificate::from_bytes(d); },
      [&](const RouterCertificate&) {});

  // After everything above, the router still authenticates a fresh user —
  // no poisoned list or cached fragment took hold.
  const auto beacon2 = w.router->make_beacon(now + 10);
  auto m2b = w.user2->process_beacon(beacon2, now + 10);
  ASSERT_TRUE(m2b.has_value());
  EXPECT_TRUE(w.router->handle_access_request(*m2b, now + 11).has_value());
}

TEST_P(FuzzTest, TruncatedMessagesRejected) {
  FuzzWorld& w = FuzzWorld::get();
  const Timestamp now = 50'000 + static_cast<Timestamp>(GetParam()) * 100;
  const auto beacon = w.router->make_beacon(now);
  const Bytes wire = beacon.to_bytes();
  for (std::size_t len : {0ul, 1ul, wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(BeaconMessage::from_bytes({wire.data(), len}), Error) << len;
  }
  // Trailing garbage also rejected.
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_THROW(BeaconMessage::from_bytes(extended), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace peace::proto
