// Robustness of every wire decoder against hostile bytes: random buffers
// and bit-flipped valid messages must either parse cleanly or throw
// peace::Error — never crash, never read out of bounds, and never produce
// a message that verifies.
#include <gtest/gtest.h>

#include "baseline/plain_auth.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

template <typename Parser>
void expect_no_crash(BytesView data, Parser&& parse) {
  try {
    parse(data);
  } catch (const Error&) {
    // rejecting is fine; crashing or UB is not.
  }
}

TEST_P(FuzzTest, RandomBytesDontCrashDecoders) {
  crypto::Drbg rng = crypto::Drbg::from_string("fuzz-random", GetParam());
  for (int i = 0; i < 50; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(600));
    expect_no_crash(junk, [](BytesView d) { BeaconMessage::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { AccessRequest::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { AccessConfirm::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { PeerHello::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { PeerReply::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { PeerConfirm::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { DataFrame::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { RouterCertificate::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { SignedRevocationList::from_bytes(d); });
    expect_no_crash(junk,
                    [](BytesView d) { groupsig::Signature::from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { curve::g1_from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) { curve::g2_from_bytes(d); });
    expect_no_crash(junk, [](BytesView d) {
      baseline::PlainAccessRequest::from_bytes(d);
    });
  }
}

struct FuzzWorld {
  FuzzWorld() : no(crypto::Drbg::from_string("fuzz-no")) {
    gm = std::make_unique<GroupManager>(no.register_group("G", 4, ttp));
    auto provision = no.provision_router(1, ~Timestamp{0});
    router = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no.params(),
        crypto::Drbg::from_string("fuzz-router"));
    router->install_revocation_lists(no.current_crl(), no.current_url());
    user = std::make_unique<User>("fuzz-user", no.params(),
                                  crypto::Drbg::from_string("fuzz-u"));
    user->complete_enrollment(gm->enroll("fuzz-user", ttp));
  }
  static FuzzWorld& get() {
    static FuzzWorld w;
    return w;
  }
  NetworkOperator no;
  TrustedThirdParty ttp;
  std::unique_ptr<GroupManager> gm;
  std::unique_ptr<MeshRouter> router;
  std::unique_ptr<User> user;
};

TEST_P(FuzzTest, BitFlippedAccessRequestsNeverAccepted) {
  FuzzWorld& w = FuzzWorld::get();
  crypto::Drbg rng = crypto::Drbg::from_string("fuzz-flip", GetParam());
  const Timestamp now = 1000 + static_cast<Timestamp>(GetParam()) * 100;
  const auto beacon = w.router->make_beacon(now);
  auto m2 = w.user->process_beacon(beacon, now);
  ASSERT_TRUE(m2.has_value());
  const Bytes wire = m2->to_bytes();

  for (int i = 0; i < 30; ++i) {
    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    try {
      const AccessRequest parsed = AccessRequest::from_bytes(mutated);
      // If it parses, the router must reject it (bad signature / unknown
      // beacon / wrong timestamp) — it must never establish a session.
      EXPECT_FALSE(
          w.router->handle_access_request(parsed, now + 1).has_value());
    } catch (const Error&) {
    }
  }
  // The pristine request still works afterwards (state not corrupted).
  EXPECT_TRUE(w.router
                  ->handle_access_request(AccessRequest::from_bytes(wire),
                                          now + 2)
                  .has_value());
}

TEST_P(FuzzTest, TruncatedMessagesRejected) {
  FuzzWorld& w = FuzzWorld::get();
  const Timestamp now = 50'000 + static_cast<Timestamp>(GetParam()) * 100;
  const auto beacon = w.router->make_beacon(now);
  const Bytes wire = beacon.to_bytes();
  for (std::size_t len : {0ul, 1ul, wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(BeaconMessage::from_bytes({wire.data(), len}), Error) << len;
  }
  // Trailing garbage also rejected.
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_THROW(BeaconMessage::from_bytes(extended), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace peace::proto
