// The design-space argument of paper Sec. IV, executed: ring signatures
// and blind signatures both deliver anonymity but are *irrevocably*
// anonymous — no opening, no revocation, and (for rings) linear-size
// signatures. These tests pin the properties and non-properties that drove
// PEACE to a group-signature design.
#include <gtest/gtest.h>

#include "baseline/blind_sig.hpp"
#include "baseline/ring_sig.hpp"
#include "groupsig/groupsig.hpp"

namespace peace::baseline {
namespace {

class RingSigTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  RingSigTest() : rng_(crypto::Drbg::from_string("ring-test")) {
    for (int i = 0; i < 5; ++i) {
      keys_.push_back(RingKeyPair::generate(rng_));
      ring_.push_back(keys_.back().public_key);
    }
  }

  crypto::Drbg rng_;
  std::vector<RingKeyPair> keys_;
  std::vector<G1> ring_;
};

TEST_F(RingSigTest, AnyMemberCanSign) {
  for (std::size_t s = 0; s < ring_.size(); ++s) {
    const auto sig = ring_sign(ring_, s, keys_[s].secret, as_bytes("m"), rng_);
    EXPECT_TRUE(ring_verify(ring_, as_bytes("m"), sig)) << s;
  }
}

TEST_F(RingSigTest, WrongMessageOrRingRejected) {
  const auto sig = ring_sign(ring_, 2, keys_[2].secret, as_bytes("m"), rng_);
  EXPECT_FALSE(ring_verify(ring_, as_bytes("other"), sig));
  std::vector<G1> other_ring = ring_;
  other_ring[0] = RingKeyPair::generate(rng_).public_key;
  EXPECT_FALSE(ring_verify(other_ring, as_bytes("m"), sig));
  RingSignature tampered = sig;
  tampered.z[1] = tampered.z[1] + Fr::one();
  EXPECT_FALSE(ring_verify(ring_, as_bytes("m"), tampered));
}

TEST_F(RingSigTest, NonMemberCannotSign) {
  const RingKeyPair outsider = RingKeyPair::generate(rng_);
  EXPECT_THROW(ring_sign(ring_, 1, outsider.secret, as_bytes("m"), rng_),
               Error);
}

TEST_F(RingSigTest, SignerIsInformationTheoreticallyHidden) {
  // Two signatures by different members are structurally identical objects:
  // same shape, all scalars uniform. There is nothing resembling PEACE's
  // (T1, T2) credential encoding, hence nothing Eq.3-like can test.
  const auto s0 = ring_sign(ring_, 0, keys_[0].secret, as_bytes("m"), rng_);
  const auto s4 = ring_sign(ring_, 4, keys_[4].secret, as_bytes("m"), rng_);
  EXPECT_EQ(s0.z.size(), s4.z.size());
  EXPECT_TRUE(ring_verify(ring_, as_bytes("m"), s0));
  EXPECT_TRUE(ring_verify(ring_, as_bytes("m"), s4));
}

TEST_F(RingSigTest, SizeGrowsLinearlyUnlikePeace) {
  // The paper's size argument: group signature constant, ring linear.
  crypto::Drbg rng = crypto::Drbg::from_string("ring-size");
  for (std::size_t n : {2u, 8u, 32u}) {
    std::vector<RingKeyPair> keys;
    std::vector<G1> ring;
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(RingKeyPair::generate(rng));
      ring.push_back(keys.back().public_key);
    }
    const auto sig = ring_sign(ring, 0, keys[0].secret, as_bytes("m"), rng);
    EXPECT_EQ(sig.size_bytes(), 32 * (1 + n));
    EXPECT_EQ(sig.to_bytes().size(), 32 * (1 + n) + 4);
  }
  EXPECT_EQ(groupsig::kSignatureSize, 782u);  // constant regardless of group
}

TEST_F(RingSigTest, SerializationRoundTrip) {
  const auto sig = ring_sign(ring_, 3, keys_[3].secret, as_bytes("m"), rng_);
  const auto again = RingSignature::from_bytes(sig.to_bytes());
  EXPECT_TRUE(ring_verify(ring_, as_bytes("m"), again));
  EXPECT_THROW(RingSignature::from_bytes(Bytes(7, 0)), Error);
  // Hostile member count must not allocate unbounded memory.
  Bytes evil(36, 0);
  evil[32] = 0xff;
  evil[33] = 0xff;
  evil[34] = 0xff;
  evil[35] = 0xff;
  EXPECT_THROW(RingSignature::from_bytes(evil), Error);
}

class BlindSigTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  BlindSigTest()
      : rng_(crypto::Drbg::from_string("blind-test")),
        issuer_(BlindIssuer::create(rng_)) {}

  BlindSignature issue(BytesView message) {
    BlindIssuer::SessionState state;
    const G1 commitment = issuer_.round1(state, rng_);
    BlindRequester requester;
    const Fr blinded =
        requester.challenge(issuer_.public_key(), commitment, message, rng_);
    return requester.unblind(issuer_.round2(state, blinded));
  }

  crypto::Drbg rng_;
  BlindIssuer issuer_;
};

TEST_F(BlindSigTest, IssueAndVerify) {
  const auto sig = issue(as_bytes("anonymous credential"));
  EXPECT_TRUE(
      blind_verify(issuer_.public_key(), as_bytes("anonymous credential"), sig));
  EXPECT_FALSE(blind_verify(issuer_.public_key(), as_bytes("other"), sig));
}

TEST_F(BlindSigTest, WrongIssuerRejected) {
  const auto sig = issue(as_bytes("m"));
  const BlindIssuer other = BlindIssuer::create(rng_);
  EXPECT_FALSE(blind_verify(other.public_key(), as_bytes("m"), sig));
}

TEST_F(BlindSigTest, TamperRejected) {
  auto sig = issue(as_bytes("m"));
  sig.s = sig.s + Fr::one();
  EXPECT_FALSE(blind_verify(issuer_.public_key(), as_bytes("m"), sig));
}

TEST_F(BlindSigTest, IssuerCannotLinkIssuanceToSignature) {
  // The unaccountability the paper rejects: even an issuer who logs every
  // issuance transcript cannot tell which session produced a given
  // signature — the blinded challenge it saw is independent of the final
  // (c, s). We check the strongest observable fact: the challenge the
  // issuer received differs from the signature's challenge, for every
  // session, and the signature verifies under a message the issuer never
  // saw.
  for (int i = 0; i < 5; ++i) {
    BlindIssuer::SessionState state;
    const G1 commitment = issuer_.round1(state, rng_);
    BlindRequester requester;
    const Bytes msg = rng_.bytes(16);
    const Fr blinded =
        requester.challenge(issuer_.public_key(), commitment, msg, rng_);
    const auto sig = requester.unblind(issuer_.round2(state, blinded));
    EXPECT_FALSE(blinded == sig.c);  // issuer's view != credential
    EXPECT_TRUE(blind_verify(issuer_.public_key(), msg, sig));
  }
}

TEST_F(BlindSigTest, SerializationRoundTrip) {
  const auto sig = issue(as_bytes("m"));
  const auto again = BlindSignature::from_bytes(sig.to_bytes());
  EXPECT_TRUE(blind_verify(issuer_.public_key(), as_bytes("m"), again));
  EXPECT_THROW(BlindSignature::from_bytes(Bytes(63, 0)), Error);
}

// The point of the whole comparison, pinned as a compile-visible fact: the
// group signature exposes an opening/revocation interface; the
// alternatives expose none. (PEACE's matches_token has no analogue here —
// these types simply have no credential-bearing fields to test.)
TEST(DesignSpace, OnlyGroupSignaturesSupportOpening) {
  static_assert(sizeof(groupsig::RevocationToken) > 0,
                "group signatures carry an openable credential token");
  // Ring and blind signatures are bare scalars/vectors of scalars.
  static_assert(std::is_same_v<decltype(RingSignature::c0), curve::Fr>);
  static_assert(std::is_same_v<decltype(BlindSignature::c), curve::Fr>);
  SUCCEED();
}

}  // namespace
}  // namespace peace::baseline
