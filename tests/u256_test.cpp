#include "math/u256.hpp"

#include <gtest/gtest.h>

namespace peace::math {
namespace {

TEST(U256, ZeroAndOne) {
  EXPECT_TRUE(U256::zero().is_zero());
  EXPECT_FALSE(U256::one().is_zero());
  EXPECT_TRUE(U256::one().is_odd());
  EXPECT_EQ(U256::one().bit_length(), 1u);
  EXPECT_EQ(U256::zero().bit_length(), 0u);
}

TEST(U256, DecimalRoundTrip) {
  const char* cases[] = {
      "0", "1", "10", "255", "18446744073709551615", "18446744073709551616",
      "21888242871839275222246405745257275088696311157297823662689037894645226208583"};
  for (const char* c : cases) {
    EXPECT_EQ(U256::from_dec(c).to_dec(), c) << c;
  }
}

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_dec("123456789012345678901234567890");
  EXPECT_EQ(U256::from_hex(v.to_hex()), v);
}

TEST(U256, DecimalRejectsGarbage) {
  EXPECT_THROW(U256::from_dec(""), Error);
  EXPECT_THROW(U256::from_dec("12a"), Error);
  // 2^256 overflows.
  EXPECT_THROW(
      U256::from_dec("115792089237316195423570985008687907853269984665640564039457584007913129639936"),
      Error);
}

TEST(U256, BytesRoundTrip) {
  const U256 v = U256::from_dec("98765432109876543210987654321098765432");
  const Bytes b = v.to_bytes();
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(U256::from_bytes(b), v);
}

TEST(U256, FromBytesShortInput) {
  const Bytes b = {0x01, 0x02};
  EXPECT_EQ(U256::from_bytes(b), U256(0x0102));
}

TEST(U256, FromBytesRejectsLong) {
  const Bytes b(33, 0xff);
  EXPECT_THROW(U256::from_bytes(b), Error);
}

TEST(U256, AddCarryPropagates) {
  const U256 max{~0ull, ~0ull, ~0ull, ~0ull};
  U256 out;
  EXPECT_EQ(add_carry(out, max, U256::one()), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256, SubBorrow) {
  U256 out;
  EXPECT_EQ(sub_borrow(out, U256::zero(), U256::one()), 1u);
  const U256 max{~0ull, ~0ull, ~0ull, ~0ull};
  EXPECT_EQ(out, max);
  EXPECT_EQ(sub_borrow(out, U256(5), U256(3)), 0u);
  EXPECT_EQ(out, U256(2));
}

TEST(U256, AddSubInverse) {
  const U256 a = U256::from_dec("314159265358979323846264338327950288419716939937");
  const U256 b = U256::from_dec("271828182845904523536028747135266249775724709369");
  U256 sum, diff;
  ASSERT_EQ(add_carry(sum, a, b), 0u);
  ASSERT_EQ(sub_borrow(diff, sum, b), 0u);
  EXPECT_EQ(diff, a);
}

TEST(U256, MulWideSmall) {
  const auto prod = mul_wide(U256(0xFFFFFFFFFFFFFFFFull), U256(2));
  EXPECT_EQ(prod[0], 0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(prod[1], 1ull);
  for (int i = 2; i < 8; ++i) EXPECT_EQ(prod[i], 0ull);
}

TEST(U256, MulWideCross) {
  // (2^64 + 1)^2 = 2^128 + 2^65 + ... check limb pattern.
  const U256 v{1, 1, 0, 0};
  const auto prod = mul_wide(v, v);
  EXPECT_EQ(prod[0], 1ull);
  EXPECT_EQ(prod[1], 2ull);
  EXPECT_EQ(prod[2], 1ull);
  EXPECT_EQ(prod[3], 0ull);
}

TEST(U256, Shifts) {
  const U256 v = U256::from_dec("123456789123456789");
  EXPECT_EQ(shr1(shl1(v)), v);
  EXPECT_EQ(shl1(U256(1)), U256(2));
  U256 top;
  top.limb[3] = 0x8000000000000000ull;
  EXPECT_TRUE(shl1(top).is_zero());
}

TEST(U256, Cmp) {
  const U256 a(5), b(7);
  EXPECT_LT(cmp(a, b), 0);
  EXPECT_GT(cmp(b, a), 0);
  EXPECT_EQ(cmp(a, a), 0);
  U256 high;
  high.limb[3] = 1;
  EXPECT_GT(cmp(high, b), 0);
}

TEST(U256, AddModWraps) {
  const U256 m(97);
  EXPECT_EQ(add_mod(U256(96), U256(5), m), U256(4));
  EXPECT_EQ(add_mod(U256(0), U256(0), m), U256(0));
}

TEST(U256, SubModWraps) {
  const U256 m(97);
  EXPECT_EQ(sub_mod(U256(3), U256(5), m), U256(95));
  EXPECT_EQ(sub_mod(U256(5), U256(3), m), U256(2));
}

TEST(U256, DivmodSmall) {
  std::uint64_t rem = 0;
  const U256 q = divmod_small(U256::from_dec("1000000000000000000000"), 7, rem);
  EXPECT_EQ(q.to_dec(), "142857142857142857142");
  EXPECT_EQ(rem, 6u);
  EXPECT_THROW(divmod_small(U256(1), 0, rem), Error);
}

TEST(U256, BitAccess) {
  const U256 v(0b1011);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_EQ(v.bit_length(), 4u);
}

class U256Param : public ::testing::TestWithParam<int> {};

TEST_P(U256Param, MulWideMatchesRepeatedAdd) {
  // a * k via mul_wide equals k-fold modular-free addition, for small k.
  const U256 a = U256::from_dec("987654321987654321987654321");
  const int k = GetParam();
  const auto wide = mul_wide(a, U256(static_cast<std::uint64_t>(k)));
  U256 sum;
  for (int i = 0; i < k; ++i) {
    U256 next;
    ASSERT_EQ(add_carry(next, sum, a), 0u);
    sum = next;
  }
  EXPECT_EQ(U256(wide[0], wide[1], wide[2], wide[3]), sum);
  for (int i = 4; i < 8; ++i) EXPECT_EQ(wide[i], 0u);
}

INSTANTIATE_TEST_SUITE_P(SmallFactors, U256Param,
                         ::testing::Values(0, 1, 2, 3, 7, 16, 31, 100));

}  // namespace
}  // namespace peace::math
