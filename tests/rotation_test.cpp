// Membership renewal via group-master-key rotation (paper III.A; the
// Sec. V.A revocation argument "revoked users do not have any group private
// key currently in use due to group public key update" depends on it).
#include <gtest/gtest.h>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

class RotationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  RotationTest() : no_(crypto::Drbg::from_string("rot-no")) {
    gm_ = std::make_unique<GroupManager>(no_.register_group("G", 4, ttp_));
    auto provision = no_.provision_router(1, kFarFuture);
    router_ = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("rot-router"));
    router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  }

  bool try_connect(User& user, Timestamp now) {
    const auto beacon = router_->make_beacon(now);
    auto m2 = user.process_beacon(beacon, now);
    if (!m2.has_value()) return false;
    return router_->handle_access_request(*m2, now + 1).has_value();
  }

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> gm_;
  std::unique_ptr<MeshRouter> router_;
};

TEST_F(RotationTest, OldCredentialsDieWithTheOldKey) {
  User alice("alice", no_.params(), crypto::Drbg::from_string("rot-a"));
  alice.complete_enrollment(gm_->enroll("alice", ttp_));
  ASSERT_TRUE(try_connect(alice, 1000));

  no_.rotate_master_key(2000);
  router_->install_params(no_.params());
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  EXPECT_EQ(no_.era_count(), 2u);

  // Alice's old credential no longer verifies against the new gpk.
  EXPECT_FALSE(try_connect(alice, 3000));
}

TEST_F(RotationTest, ReEnrolledUserWorksInNewEra) {
  User alice("alice", no_.params(), crypto::Drbg::from_string("rot-b"));
  alice.complete_enrollment(gm_->enroll("alice", ttp_));

  no_.rotate_master_key(2000);
  no_.reissue_group(*gm_, 4, ttp_);
  router_->install_params(no_.params());
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());

  // Renewal: the user fetches the new parameters and re-enrolls through
  // the GM as at initial setup.
  alice.install_params(no_.params());
  EXPECT_TRUE(alice.enrolled_groups().empty());
  alice.complete_enrollment(gm_->enroll("alice", ttp_));
  EXPECT_TRUE(try_connect(alice, 3000));
}

TEST_F(RotationTest, StaleEnrollmentRejectedAfterRotation) {
  // An enrollment produced before the rotation cannot be completed against
  // the new parameters: the SDH check catches it.
  const auto old_enrollment = gm_->enroll("late-joiner", ttp_);
  no_.rotate_master_key(2000);
  User late("late-joiner", no_.params(), crypto::Drbg::from_string("rot-c"));
  EXPECT_THROW(late.complete_enrollment(old_enrollment), Error);
}

TEST_F(RotationTest, KeyIndicesStayUniqueAcrossEras) {
  no_.rotate_master_key(2000);
  no_.reissue_group(*gm_, 4, ttp_);
  // Fresh indices continue numbering; enrolling two users yields indices
  // from the new range (members 4..7), not colliding with era-0 (0..3).
  const auto e1 = gm_->enroll("u1", ttp_);
  EXPECT_GE(e1.index.member, 4u);
}

TEST_F(RotationTest, ArchivedSessionsRemainAuditable) {
  User alice("alice", no_.params(), crypto::Drbg::from_string("rot-d"));
  alice.complete_enrollment(gm_->enroll("alice", ttp_));
  const auto beacon = router_->make_beacon(1000);
  auto logged_m2 = alice.process_beacon(beacon, 1000);
  ASSERT_TRUE(logged_m2.has_value());

  no_.rotate_master_key(2000);
  // Audit of the pre-rotation session still resolves via the archived era.
  const auto audit = no_.audit(*logged_m2);
  ASSERT_TRUE(audit.has_value());
  EXPECT_EQ(audit->group_id, gm_->id());
  // And the full trace still works (GM keeps historical uid mappings).
  const auto traced = LawAuthority::trace(no_, {gm_.get()}, *logged_m2);
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->uid, "alice");
}

TEST_F(RotationTest, UrlResetsForNewEra) {
  User bad("bad", no_.params(), crypto::Drbg::from_string("rot-e"));
  const auto enrollment = gm_->enroll("bad", ttp_);
  bad.complete_enrollment(enrollment);
  no_.revoke_user_key(enrollment.index, 1500);
  EXPECT_EQ(no_.current_url().entries.size(), 1u);

  const auto old_version = no_.current_url().version;
  no_.rotate_master_key(2000);
  // New era: empty URL with a strictly higher version (no rollback).
  EXPECT_TRUE(no_.current_url().entries.empty());
  EXPECT_GT(no_.current_url().version, old_version);
}

TEST_F(RotationTest, CrossEraTokensNeverFalsePositive) {
  // Tokens from a previous era must not match new-era signatures (and the
  // check must not crash): the credential spaces are disjoint under
  // different gammas.
  User alice("alice", no_.params(), crypto::Drbg::from_string("rot-x"));
  alice.complete_enrollment(gm_->enroll("alice", ttp_));
  const groupsig::RevocationToken old_token{alice.credential(gm_->id()).a};

  no_.rotate_master_key(2000);
  no_.reissue_group(*gm_, 4, ttp_);
  User bob("bob", no_.params(), crypto::Drbg::from_string("rot-y"));
  bob.complete_enrollment(gm_->enroll("bob", ttp_));

  crypto::Drbg rng = crypto::Drbg::from_string("rot-z");
  const auto sig = groupsig::sign(no_.params().gpk, bob.credential(gm_->id()),
                                  as_bytes("m"), rng);
  EXPECT_TRUE(groupsig::verify_proof(no_.params().gpk, as_bytes("m"), sig));
  EXPECT_FALSE(groupsig::matches_token(no_.params().gpk, as_bytes("m"), sig,
                                       old_token));
}

TEST_F(RotationTest, UrlCompactionPolicy) {
  // Sec. V.C's URL size control: once the list is long enough that linear
  // Eq.3 scans dominate, a rotation resets it to empty.
  for (std::uint32_t j = 0; j < 3; ++j)
    no_.revoke_user_key(KeyIndex{gm_->id(), j}, 1000 + j);
  EXPECT_FALSE(no_.url_needs_compaction(4));
  EXPECT_TRUE(no_.url_needs_compaction(3));
  EXPECT_TRUE(no_.url_needs_compaction(2));

  no_.rotate_master_key(5000);
  EXPECT_FALSE(no_.url_needs_compaction(1));
  EXPECT_TRUE(no_.current_url().entries.empty());
}

TEST_F(RotationTest, MultipleRotations) {
  for (int era = 0; era < 3; ++era) {
    no_.rotate_master_key(1000 * (era + 2));
    no_.reissue_group(*gm_, 2, ttp_);
  }
  EXPECT_EQ(no_.era_count(), 4u);
  router_->install_params(no_.params());
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  User fresh("fresh", no_.params(), crypto::Drbg::from_string("rot-f"));
  fresh.complete_enrollment(gm_->enroll("fresh", ttp_));
  EXPECT_TRUE(try_connect(fresh, 50'000));
}

}  // namespace
}  // namespace peace::proto
