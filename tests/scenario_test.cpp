// Capstone integration scenario: a multi-group metropolitan deployment
// living through a full operational cycle — joining, roaming, relaying,
// Internet access, an active attacker, an audit, a revocation, a DoS wave,
// and finally a membership-renewal key rotation — with every paper
// guarantee checked along the way. If any module regresses in a way the
// unit tests miss, this is designed to catch it.
#include <gtest/gtest.h>

#include "mesh/adversary.hpp"

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

TEST_F(ScenarioTest, FullOperationalCycle) {
  proto::NetworkOperator no(crypto::Drbg::from_string("scenario-no"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager company = no.register_group("Company", 8, ttp);
  proto::GroupManager university = no.register_group("University", 8, ttp);

  Simulator sim;
  MeshNetwork net(sim, crypto::Drbg::from_string("scenario-net"));
  const NodeId r1 = net.add_router({0, 0}, no, kFarFuture);
  const NodeId r2 = net.add_router({400, 0}, no, kFarFuture);
  net.add_access_point({800, 0});

  Eavesdropper eve;
  eve.attach(net);
  Replayer replayer;
  replayer.attach(net);

  // --- Act 1: enrollment & join -----------------------------------------
  auto enroll = [&](const char* uid, proto::GroupManager& gm, Vec2 pos) {
    auto user = std::make_unique<proto::User>(
        uid, no.params(), crypto::Drbg::from_string(std::string("sc-") + uid));
    const auto enrollment = gm.enroll(uid, ttp);
    const auto receipt = user->complete_enrollment(enrollment);
    gm.record_receipt(enrollment, user->receipt_public_key(), receipt);
    return net.add_user(pos, std::move(user));
  };
  const NodeId alice = enroll("alice", company, {40, 10});
  const NodeId bob = enroll("bob", company, {90, -10});
  const NodeId carol = enroll("carol", university, {420, 20});

  net.start_beaconing(100, 500, 3000);
  sim.run_until(4000);
  ASSERT_TRUE(net.is_connected(alice));
  ASSERT_TRUE(net.is_connected(bob));
  ASSERT_TRUE(net.is_connected(carol));

  // --- Act 2: traffic, relaying, Internet --------------------------------
  net.establish_peer_links();
  sim.run_until(4500);
  EXPECT_TRUE(net.send_to_internet(alice, as_bytes("banking session")));
  EXPECT_TRUE(net.send_to_internet(carol, as_bytes("lecture stream")));
  EXPECT_GE(net.stats().internet_delivered, 2u);
  EXPECT_FALSE(eve.saw_bytes(as_bytes("banking session")));

  // --- Act 3: an attacker probes ------------------------------------------
  BogusInjector outsider(crypto::Drbg::from_string("sc-outsider"));
  const auto beacon = net.router(r1).make_beacon(5000);
  EXPECT_EQ(outsider.inject(net.router(r1), beacon, 5001, 10), 0u);
  EXPECT_EQ(replayer.replay_all(net.router(r1), 5100), 0u);

  // DoS wave: puzzles switch on, the flood dies cheap, alice-class users
  // still get in (checked in act 5 via re-association).
  net.router(r1).set_under_attack(true, 10);
  DosFlooder flooder(crypto::Drbg::from_string("sc-flooder"));
  const auto atk_beacon = net.router(r1).make_beacon(5200);
  const auto flood = flooder.flood(net.router(r1), atk_beacon, 5201, 20,
                                   /*solve_puzzles=*/false);
  EXPECT_EQ(flood.accepted, 0u);
  EXPECT_EQ(flood.router_sig_verifications, 0u);
  net.router(r1).set_under_attack(false);

  // --- Act 4: dispute -> audit -> trace -> revocation ----------------------
  // Bob misbehaves. Pull his last logged M.2 off the replayer's capture by
  // auditing everything and matching the company group.
  proto::AccessRequest bob_m2;
  bool found = false;
  for (std::size_t i = 0; i < eve.access_requests_seen() && !found; ++i) {
    // Re-derive from eve's recorded frames via the audit itself: scan all
    // captured requests, pick the one that traces to bob.
  }
  // Simpler and fully in-protocol: bob authenticates once more; the router
  // logs it; NO audits that session.
  {
    const auto b = net.router(r1).make_beacon(6000);
    auto m2 = net.user(bob).process_beacon(b, 6000);
    ASSERT_TRUE(m2.has_value());
    ASSERT_TRUE(net.router(r1).handle_access_request(*m2, 6001).has_value());
    bob_m2 = *m2;
    found = true;
  }
  ASSERT_TRUE(found);
  const auto audit = no.audit(bob_m2);
  ASSERT_TRUE(audit.has_value());
  EXPECT_EQ(audit->group_id, company.id());

  const auto traced =
      proto::LawAuthority::trace(no, {&company, &university}, bob_m2);
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->uid, "bob");
  EXPECT_TRUE(traced->receipt_on_file);

  // The revocation reaches the segment as a signed delta over the radio
  // (the metro-scale path); both routers share the updated snapshot.
  no.revoke_user_key(audit->index, 7000);
  net.announce_rl_deltas(no.make_delta_announcement(0, 0), no);
  sim.run_until(7050);
  ASSERT_EQ(net.revocation()->url_version(), no.current_url().version);
  EXPECT_EQ(net.revocation()->stats().deltas_applied, 1u);
  {
    const auto b = net.router(r1).make_beacon(7100);
    auto m2 = net.user(bob).process_beacon(b, 7100);
    ASSERT_TRUE(m2.has_value());
    EXPECT_FALSE(net.router(r1).handle_access_request(*m2, 7101).has_value());
  }

  // --- Act 5: roaming ------------------------------------------------------
  net.move_user(alice, {430, -20});
  net.reassociate(alice);
  net.start_beaconing(8000, 500, 9500);
  sim.run_until(10'000);
  ASSERT_TRUE(net.is_connected(alice));
  EXPECT_EQ(net.serving_router(alice), net.router(r2).id());

  // --- Act 6: membership renewal -------------------------------------------
  no.rotate_master_key(11'000);
  no.reissue_group(company, 8, ttp);
  no.reissue_group(university, 8, ttp);
  net.push_revocation_lists(no.current_crl(), no.current_url());
  net.router(r1).install_params(no.params());
  net.router(r2).install_params(no.params());

  // Everyone's era-1 credentials are dead (bob's revocation is now moot).
  net.user(alice).install_params(no.params());
  {
    const auto b = net.router(r2).make_beacon(12'000);
    EXPECT_THROW(net.user(alice).process_beacon(b, 12'000), Error)
        << "no credential after rotation until re-enrollment";
  }
  const auto renewal = company.enroll("alice", ttp);
  const auto receipt = net.user(alice).complete_enrollment(renewal);
  company.record_receipt(renewal, net.user(alice).receipt_public_key(),
                         receipt);
  {
    const auto b = net.router(r2).make_beacon(13'000);
    auto m2 = net.user(alice).process_beacon(b, 13'000);
    ASSERT_TRUE(m2.has_value());
    EXPECT_TRUE(net.router(r2).handle_access_request(*m2, 13'001).has_value());
  }

  // The era-1 dispute against bob remains fully auditable from the archive.
  const auto archived_audit = no.audit(bob_m2);
  ASSERT_TRUE(archived_audit.has_value());
  EXPECT_EQ(archived_audit->group_id, company.id());

  // --- Epilogue: the eavesdropper's haul ------------------------------------
  EXPECT_GT(eve.frames_seen(), 10u);
  EXPECT_EQ(eve.repeated_field_count(), 0u);
  for (const char* uid : {"alice", "bob", "carol"}) {
    EXPECT_FALSE(eve.saw_bytes(as_bytes(uid))) << uid;
  }
}

}  // namespace
}  // namespace peace::mesh
