// Privacy-enhanced accountability (paper IV.D): NO audits a logged session
// to user-group granularity; the law authority deanonymizes only with both
// NO and the right GM; innocent users cannot be framed.
#include <gtest/gtest.h>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  AuditTest() : no_(crypto::Drbg::from_string("audit-no")) {
    gm_company_ = std::make_unique<GroupManager>(
        no_.register_group("Company XYZ", 4, ttp_));
    gm_university_ = std::make_unique<GroupManager>(
        no_.register_group("University Z", 4, ttp_));

    auto provision = no_.provision_router(1, kFarFuture);
    router_ = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("audit-router"));
    router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  }

  User enroll(const std::string& uid, GroupManager& gm) {
    User user(uid, no_.params(), crypto::Drbg::from_string("audit-" + uid));
    const auto enrollment = gm.enroll(uid, ttp_);
    const auto receipt = user.complete_enrollment(enrollment);
    gm.record_receipt(enrollment, user.receipt_public_key(), receipt);
    return user;
  }

  /// Produces a logged (M.2) for the given user — what NO's audit consumes.
  AccessRequest logged_m2(User& user, Timestamp now, GroupId via = 0) {
    const BeaconMessage beacon = router_->make_beacon(now);
    auto m2 = user.process_beacon(beacon, now, via);
    EXPECT_TRUE(m2.has_value());
    EXPECT_TRUE(router_->handle_access_request(*m2, now + 1).has_value());
    return *m2;
  }

  static constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> gm_company_;
  std::unique_ptr<GroupManager> gm_university_;
  std::unique_ptr<MeshRouter> router_;
};

TEST_F(AuditTest, AuditFindsResponsibleGroupOnly) {
  User alice = enroll("alice@company", *gm_company_);
  const AccessRequest m2 = logged_m2(alice, 1000);

  const auto result = no_.audit(m2);
  ASSERT_TRUE(result.has_value());
  // The audit names the group...
  EXPECT_EQ(result->group_id, gm_company_->id());
  // ...and the credential index, but nothing in the result is a uid: the
  // AuditResult type has no user-identity field at all, and NO's state has
  // no uid anywhere (late binding).
  EXPECT_EQ(result->index.group, gm_company_->id());
}

TEST_F(AuditTest, AuditDistinguishesGroups) {
  User alice = enroll("alice@company", *gm_company_);
  User bob = enroll("bob@university", *gm_university_);
  const auto r1 = no_.audit(logged_m2(alice, 1000));
  const auto r2 = no_.audit(logged_m2(bob, 2000));
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->group_id, gm_company_->id());
  EXPECT_EQ(r2->group_id, gm_university_->id());
}

TEST_F(AuditTest, AuditPinsSameMemberAcrossSessions) {
  // Two sessions by the same user audit to the same token even though the
  // sessions themselves are unlinkable to outsiders.
  User alice = enroll("alice@company", *gm_company_);
  const auto r1 = no_.audit(logged_m2(alice, 1000));
  const auto r2 = no_.audit(logged_m2(alice, 2000));
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->token.a, r2->token.a);
  EXPECT_TRUE(r1->index == r2->index);
}

TEST_F(AuditTest, MultiRoleUserAuditsToChosenRole) {
  // The sophisticated-privacy property: a user acting "as an employee"
  // is pinned to the company, acting "as a student" to the university —
  // the audit reveals only the role context, not the whole identity.
  User carol("carol", no_.params(), crypto::Drbg::from_string("carol-roles"));
  carol.complete_enrollment(gm_company_->enroll("carol", ttp_));
  carol.complete_enrollment(gm_university_->enroll("carol", ttp_));

  const auto as_employee =
      no_.audit(logged_m2(carol, 1000, gm_company_->id()));
  const auto as_student =
      no_.audit(logged_m2(carol, 2000, gm_university_->id()));
  ASSERT_TRUE(as_employee.has_value());
  ASSERT_TRUE(as_student.has_value());
  EXPECT_EQ(as_employee->group_id, gm_company_->id());
  EXPECT_EQ(as_student->group_id, gm_university_->id());
  EXPECT_NE(as_employee->token.a, as_student->token.a);
}

TEST_F(AuditTest, LawAuthorityTraceNeedsBoth) {
  User alice = enroll("alice@company", *gm_company_);
  const AccessRequest m2 = logged_m2(alice, 1000);

  // With NO + the right GM: full trace.
  const auto traced = LawAuthority::trace(
      no_, {gm_company_.get(), gm_university_.get()}, m2);
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->uid, "alice@company");
  EXPECT_EQ(traced->group_id, gm_company_->id());
  // Non-repudiation: alice's signed enrollment receipt backs the trace.
  EXPECT_TRUE(traced->receipt_on_file);

  // With only the wrong GM cooperating: no uid.
  EXPECT_FALSE(
      LawAuthority::trace(no_, {gm_university_.get()}, m2).has_value());
  // With no GM at all: no uid.
  EXPECT_FALSE(LawAuthority::trace(no_, {}, m2).has_value());
}

TEST_F(AuditTest, GmAloneCannotIdentifySigner) {
  // The GM holds (uid, grp, x) but no A, so it cannot run Eq.3 — there is
  // structurally nothing in GroupManager to test a signature against. What
  // we can check: the information it does hold does not determine the
  // signature's token without gamma.
  User alice = enroll("alice@company", *gm_company_);
  const AccessRequest m2 = logged_m2(alice, 1000);
  const auto uid = gm_company_->uid_for_index(KeyIndex{gm_company_->id(), 3});
  // GM can map indices to uids (its own records)...
  EXPECT_TRUE(uid.has_value());
  // ...but cannot produce the audit linkage: only NO's audit can.
  const auto audit = no_.audit(m2);
  ASSERT_TRUE(audit.has_value());
  EXPECT_TRUE(no_.index_of_token(audit->token.a).has_value());
}

TEST_F(AuditTest, UnknownSignerAuditsToNothing) {
  // A signature under a different network operator's gpk scans clean.
  NetworkOperator other(crypto::Drbg::from_string("other-no"));
  TrustedThirdParty other_ttp;
  GroupManager other_gm = other.register_group("other", 2, other_ttp);
  auto provision = other.provision_router(9, kFarFuture);
  MeshRouter other_router(9, provision.keypair, provision.certificate,
                          other.params(),
                          crypto::Drbg::from_string("other-router"));
  other_router.install_revocation_lists(other.current_crl(),
                                        other.current_url());
  User eve("eve", other.params(), crypto::Drbg::from_string("eve"));
  eve.complete_enrollment(other_gm.enroll("eve", other_ttp));
  const BeaconMessage beacon = other_router.make_beacon(1000);
  auto m2 = eve.process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(no_.audit(*m2).has_value());
}

TEST_F(AuditTest, NonFrameability) {
  // The audit pins exactly the signer's token: every other issued key's
  // token fails Eq.3, so no innocent member can be framed.
  User alice = enroll("alice@company", *gm_company_);
  User bob = enroll("bob@company", *gm_company_);
  const AccessRequest by_alice = logged_m2(alice, 1000);
  const AccessRequest by_bob = logged_m2(bob, 2000);
  const auto r_alice = no_.audit(by_alice);
  const auto r_bob = no_.audit(by_bob);
  ASSERT_TRUE(r_alice.has_value());
  ASSERT_TRUE(r_bob.has_value());
  EXPECT_NE(r_alice->token.a, r_bob->token.a);
  EXPECT_FALSE(r_alice->index == r_bob->index);
  const auto t_alice = LawAuthority::trace(no_, {gm_company_.get()}, by_alice);
  const auto t_bob = LawAuthority::trace(no_, {gm_company_.get()}, by_bob);
  ASSERT_TRUE(t_alice.has_value());
  ASSERT_TRUE(t_bob.has_value());
  EXPECT_EQ(t_alice->uid, "alice@company");
  EXPECT_EQ(t_bob->uid, "bob@company");
}

TEST_F(AuditTest, AuditScansGrtLinearly) {
  // Instrumentation for E7: tokens_scanned reports the scan length.
  User alice = enroll("alice@company", *gm_company_);
  const auto result = no_.audit(logged_m2(alice, 1000));
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(result->tokens_scanned, 1u);
  EXPECT_LE(result->tokens_scanned, no_.grt_size());
}

TEST_F(AuditTest, AuditDerivesBasesOncePerEra) {
  // The signature bases depend on (gpk, message), never on the token, so
  // the audit derives PreparedBases once per scanned era — not once per
  // grt entry as the seed implementation did.
  User alice = enroll("alice@company", *gm_company_);
  const AccessRequest m2 = logged_m2(alice, 1000);

  // Rotate: alice's session now lives in an archived era. Repopulate the
  // current era so the audit walks TWO non-empty grts before hitting.
  no_.rotate_master_key(2000);
  no_.reissue_group(*gm_company_, 4, ttp_);
  ASSERT_EQ(no_.era_count(), 2u);

  const std::uint64_t before = curve::g2_prepared_count();
  const auto result = no_.audit(m2);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->group_id, gm_company_->id());
  // One G2Prepared (the era's v_hat) per scanned era, independent of how
  // many tokens each era holds.
  EXPECT_EQ(curve::g2_prepared_count() - before, 2u);
  // The current (post-rotation) era was scanned in full and missed before
  // the archived era produced the hit.
  EXPECT_GT(result->tokens_scanned, no_.grt_size());
}

}  // namespace
}  // namespace peace::proto
