// Session keying and the hybrid data path.
#include "peace/session.hpp"

#include <gtest/gtest.h>

#include "curve/ecdsa.hpp"

namespace peace::proto {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  SessionTest() : rng_(crypto::Drbg::from_string("session-test")) {
    shared_ = curve::Bn254::get().g1_gen * curve::random_fr(rng_);
    sid_ = to_bytes("session-id-0001");
    a_ = Session::establish(shared_, sid_, Session::Role::kInitiator);
    b_ = Session::establish(shared_, sid_, Session::Role::kResponder);
  }

  crypto::Drbg rng_;
  G1 shared_;
  Bytes sid_;
  Session a_ = Session::establish(G1(), {}, Session::Role::kInitiator);
  Session b_ = Session::establish(G1(), {}, Session::Role::kResponder);
};

TEST_F(SessionTest, BidirectionalTraffic) {
  auto f1 = a_.seal(as_bytes("hello"));
  auto got = b_.open(f1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("hello"));
  auto f2 = b_.seal(as_bytes("world"));
  auto got2 = a_.open(f2);
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(*got2, to_bytes("world"));
}

TEST_F(SessionTest, DirectionalKeysDiffer) {
  // A frame sealed by the initiator cannot be opened by the initiator
  // (no reflection attacks).
  auto f = a_.seal(as_bytes("m"));
  Session a2 = Session::establish(shared_, sid_, Session::Role::kInitiator);
  EXPECT_FALSE(a2.open(f).has_value());
}

TEST_F(SessionTest, ReplayRejected) {
  auto f = a_.seal(as_bytes("once"));
  ASSERT_TRUE(b_.open(f).has_value());
  EXPECT_FALSE(b_.open(f).has_value());
}

TEST_F(SessionTest, ReorderRejected) {
  auto f0 = a_.seal(as_bytes("zero"));
  auto f1 = a_.seal(as_bytes("one"));
  ASSERT_TRUE(b_.open(f1).has_value());
  EXPECT_FALSE(b_.open(f0).has_value());  // old seq after newer one
}

TEST_F(SessionTest, GapsAllowedForward) {
  auto f0 = a_.seal(as_bytes("zero"));
  auto f1 = a_.seal(as_bytes("one"));
  auto f2 = a_.seal(as_bytes("two"));
  (void)f0;
  (void)f1;
  EXPECT_TRUE(b_.open(f2).has_value());  // loss tolerated
}

TEST_F(SessionTest, TamperRejected) {
  auto f = a_.seal(as_bytes("payload"));
  f.ciphertext[0] ^= 1;
  EXPECT_FALSE(b_.open(f).has_value());
}

TEST_F(SessionTest, FailedOpenDoesNotAdvanceWindow) {
  // A forged frame with a high sequence number must not burn sequence
  // numbers for the legitimate sender: the replay window only advances on
  // successful AEAD verification.
  DataFrame forged;
  forged.session_id = sid_;
  forged.seq = 1000;
  forged.ciphertext = to_bytes("not a real ciphertext, just padding....");
  EXPECT_FALSE(b_.open(forged).has_value());

  auto f0 = a_.seal(as_bytes("still works"));
  EXPECT_EQ(f0.seq, 0u);
  EXPECT_TRUE(b_.open(f0).has_value());
}

TEST_F(SessionTest, AcceptOnceEvenWithGaps) {
  // Jumping forward (loss) is fine, but every accepted sequence number is
  // accepted exactly once, and anything at or below it is then dead.
  auto f0 = a_.seal(as_bytes("zero"));
  auto f1 = a_.seal(as_bytes("one"));
  auto f2 = a_.seal(as_bytes("two"));
  ASSERT_TRUE(b_.open(f1).has_value());
  EXPECT_FALSE(b_.open(f1).has_value());  // exact replay
  EXPECT_FALSE(b_.open(f0).has_value());  // older
  EXPECT_TRUE(b_.open(f2).has_value());   // newer still fine
}

TEST_F(SessionTest, SendSequenceExhaustionRefused) {
  // The AEAD nonce is derived from the 64-bit sequence number; wrapping
  // would reuse a nonce under the same key. seal() must refuse instead.
  a_.advance_send_seq(Session::kSeqExhausted);
  EXPECT_EQ(a_.frames_sent(), Session::kSeqExhausted);
  EXPECT_THROW(a_.seal(as_bytes("one too many")), Error);
  // Saturating, not wrapping: still refused after another advance.
  a_.advance_send_seq(5);
  EXPECT_THROW(a_.seal(as_bytes("still refused")), Error);
}

TEST_F(SessionTest, WrongSessionIdRejected) {
  auto f = a_.seal(as_bytes("m"));
  f.session_id = to_bytes("other-session!!");
  Session other =
      Session::establish(shared_, f.session_id, Session::Role::kResponder);
  // Different session id => different keys: must fail.
  EXPECT_FALSE(other.open(f).has_value());
  EXPECT_FALSE(b_.open(f).has_value());
}

TEST_F(SessionTest, DifferentDhKeysCannotInterop) {
  const G1 other_shared = curve::Bn254::get().g1_gen * curve::random_fr(rng_);
  Session eve = Session::establish(other_shared, sid_, Session::Role::kResponder);
  auto f = a_.seal(as_bytes("secret"));
  EXPECT_FALSE(eve.open(f).has_value());
}

TEST_F(SessionTest, MacPath) {
  const Bytes tag = a_.mac(as_bytes("data"));
  EXPECT_EQ(tag.size(), 32u);
  EXPECT_TRUE(b_.check_mac(as_bytes("data"), tag));
  EXPECT_FALSE(b_.check_mac(as_bytes("datA"), tag));
  // MAC key is shared (not directional).
  EXPECT_TRUE(a_.check_mac(as_bytes("data"), b_.mac(as_bytes("data"))));
}

TEST_F(SessionTest, FrameSerializationRoundTrip) {
  auto f = a_.seal(as_bytes("wire"));
  const DataFrame f2 = DataFrame::from_bytes(f.to_bytes());
  EXPECT_EQ(f2.session_id, f.session_id);
  EXPECT_EQ(f2.seq, f.seq);
  EXPECT_EQ(f2.ciphertext, f.ciphertext);
  EXPECT_TRUE(b_.open(f2).has_value());
}

TEST_F(SessionTest, ConfirmSealOpenRoundTrip) {
  const Bytes ct = confirm_seal(shared_, sid_, as_bytes("confirm-payload"));
  auto pt = confirm_open(shared_, sid_, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, to_bytes("confirm-payload"));
  // Bound to the session id.
  EXPECT_FALSE(confirm_open(shared_, to_bytes("other"), ct).has_value());
  // And to the DH share.
  const G1 other = curve::Bn254::get().g1_gen * curve::random_fr(rng_);
  EXPECT_FALSE(confirm_open(other, sid_, ct).has_value());
}

TEST_F(SessionTest, Aes128GcmSuiteRoundTrip) {
  auto a = Session::establish(shared_, sid_, Session::Role::kInitiator,
                              Session::CipherSuite::kAes128Gcm);
  auto b = Session::establish(shared_, sid_, Session::Role::kResponder,
                              Session::CipherSuite::kAes128Gcm);
  EXPECT_EQ(a.suite(), Session::CipherSuite::kAes128Gcm);
  auto f = a.seal(as_bytes("via aes-gcm"));
  auto got = b.open(f);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("via aes-gcm"));
  // Replay and tamper protections hold identically.
  EXPECT_FALSE(b.open(f).has_value());
  auto f2 = a.seal(as_bytes("x"));
  f2.ciphertext[0] ^= 1;
  EXPECT_FALSE(b.open(f2).has_value());
}

TEST_F(SessionTest, SuitesDoNotInterop) {
  // Same DH share, different suites: key material and framing differ, so
  // nothing decrypts across the mismatch.
  auto chacha = Session::establish(shared_, sid_, Session::Role::kInitiator);
  auto gcm = Session::establish(shared_, sid_, Session::Role::kResponder,
                                Session::CipherSuite::kAes128Gcm);
  EXPECT_FALSE(gcm.open(chacha.seal(as_bytes("m"))).has_value());
}

TEST_F(SessionTest, ManyFramesThroughput) {
  for (int i = 0; i < 500; ++i) {
    auto f = a_.seal(as_bytes("frame payload with some body to it"));
    ASSERT_TRUE(b_.open(f).has_value()) << i;
  }
  EXPECT_EQ(a_.frames_sent(), 500u);
}

}  // namespace
}  // namespace peace::proto
