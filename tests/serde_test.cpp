#include "common/serde.hpp"

#include <gtest/gtest.h>

#include "curve/bn254.hpp"
#include "curve/pairing.hpp"
#include "groupsig/groupsig.hpp"
#include "peace/messages.hpp"

namespace peace {
namespace {

TEST(Serde, RoundTripAllTypes) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.bytes(to_bytes("hello"));
  w.str("world");
  w.raw(to_bytes("xyz"));

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.bytes(), to_bytes("hello"));
  EXPECT_EQ(r.str(), "world");
  EXPECT_EQ(r.raw(3), to_bytes("xyz"));
  EXPECT_TRUE(r.empty());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serde, TruncationThrows) {
  Writer w;
  w.u32(42);
  Reader r(w.data());
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_THROW(r.u32(), Error);
}

TEST(Serde, LengthPrefixValidated) {
  // A length prefix larger than the remaining buffer must throw, not
  // allocate or read out of bounds.
  Bytes evil = {0xff, 0xff, 0xff, 0xff, 0x01};
  Reader r(evil);
  EXPECT_THROW(r.bytes(), Error);
}

TEST(Serde, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_end(), Error);
}

TEST(Serde, EmptyBytes) {
  Writer w;
  w.bytes({});
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.empty());
}

TEST(Serde, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x7f, 0x80, 0xff};
  EXPECT_EQ(to_hex(b), "007f80ff");
  EXPECT_EQ(from_hex("007f80ff"), b);
  EXPECT_EQ(from_hex("007F80FF"), b);
  EXPECT_THROW(from_hex("abc"), Error);
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(to_bytes("same"), to_bytes("same")));
  EXPECT_FALSE(ct_equal(to_bytes("same"), to_bytes("sane")));
  EXPECT_FALSE(ct_equal(to_bytes("short"), to_bytes("longer")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, XorBytes) {
  const Bytes a = {0xff, 0x0f, 0x00};
  const Bytes b = {0x0f, 0x0f};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0x00, 0x00}));
  // Involution when lengths match the first operand.
  EXPECT_EQ(xor_bytes(xor_bytes(a, b), b), a);
}

TEST(Bytes, Concat) {
  EXPECT_EQ(concat(to_bytes("ab"), to_bytes("cd"), to_bytes("e")),
            to_bytes("abcde"));
}

// --- Point validation on the wire ------------------------------------------
// Adversarial frames must not be able to feed malformed points into pairings
// or DH: off-curve, out-of-range, non-subgroup, and identity encodings all
// get rejected at parse time.

class PointSerdeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

TEST_F(PointSerdeTest, G1RejectsBadFlagByte) {
  Bytes enc = curve::g1_to_bytes(curve::Bn254::get().g1_gen);
  enc[0] = 5;
  EXPECT_THROW(curve::g1_from_bytes(enc), Error);
}

TEST_F(PointSerdeTest, G1RejectsCoordinateAboveModulus) {
  Bytes enc(curve::kG1CompressedSize, 0xff);
  enc[0] = 2;
  EXPECT_THROW(curve::g1_from_bytes(enc), Error);
}

TEST_F(PointSerdeTest, G1RejectsOffCurveX) {
  // About half of all x values have no point: x^3 + 3 is a non-residue.
  // Scan small x until one rejects to keep the test deterministic.
  bool found = false;
  for (std::uint8_t x = 0; x < 32 && !found; ++x) {
    Bytes enc(curve::kG1CompressedSize, 0);
    enc[0] = 2;
    enc[curve::kG1CompressedSize - 1] = x;
    try {
      curve::g1_from_bytes(enc);
    } catch (const Error&) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PointSerdeTest, G1RejectsBadInfinityEncoding) {
  Bytes enc(curve::kG1CompressedSize, 0);
  enc[5] = 1;  // flag says infinity but the payload is nonzero
  EXPECT_THROW(curve::g1_from_bytes(enc), Error);
}

TEST_F(PointSerdeTest, G2RejectsNonSubgroupPoint) {
  // E'(Fp2) has order r * (2p - r): almost all curve points are NOT in the
  // order-r subgroup. Find one by scanning x, and check the deserializer
  // refuses it even though it is a perfectly valid twist-curve point.
  const auto& bn = curve::Bn254::get();
  bool found = false;
  for (std::uint64_t i = 1; i < 64 && !found; ++i) {
    const math::Fp2 x = math::Fp2::from_u64(i, 0);
    const math::Fp2 rhs = x.square() * x + curve::G2Traits::b();
    math::Fp2 y;
    if (!rhs.sqrt(y)) continue;
    const curve::G2 point(x, y);
    ASSERT_TRUE(point.is_on_curve());
    if ((point * bn.r).is_infinity()) continue;  // unlucky: in the subgroup
    found = true;
    EXPECT_THROW(curve::g2_from_bytes(curve::g2_to_bytes(point)), Error);
  }
  EXPECT_TRUE(found);
}

TEST_F(PointSerdeTest, GroupKeyAndTokenRejectIdentity) {
  EXPECT_THROW(
      groupsig::GroupPublicKey::from_bytes(Bytes(curve::kG2CompressedSize, 0)),
      Error);
  EXPECT_THROW(
      groupsig::RevocationToken::from_bytes(Bytes(curve::kG1CompressedSize, 0)),
      Error);
}

TEST_F(PointSerdeTest, SignatureRejectsIdentityComponents) {
  const auto& bn = curve::Bn254::get();
  groupsig::Signature sig;
  sig.epoch = 1;
  sig.nonce = curve::Fr::from_u64(11);
  sig.t1 = bn.g1_gen * curve::Fr::from_u64(3);
  sig.t2 = bn.g1_gen * curve::Fr::from_u64(5);
  sig.t_hat = bn.g2_gen * curve::Fr::from_u64(7);
  sig.r1 = bn.g1_gen * curve::Fr::from_u64(13);
  // R2 must live in the cyclotomic subgroup of GT (enforced at parse time),
  // so build it as an honest pairing value.
  sig.r2 = curve::pairing(bn.g1_gen * curve::Fr::from_u64(29), bn.g2_gen);
  sig.r3 = bn.g1_gen * curve::Fr::from_u64(31);
  sig.r4 = bn.g2_gen * curve::Fr::from_u64(37);
  sig.s_alpha = curve::Fr::from_u64(17);
  sig.s_x = curve::Fr::from_u64(19);
  sig.s_delta = curve::Fr::from_u64(23);
  const Bytes good = sig.to_bytes();
  EXPECT_NO_THROW(groupsig::Signature::from_bytes(good));

  // Wire layout: epoch(8) | nonce(32) | t1(33) | t2(33) | t_hat(65) | ...
  const auto zeroed = [&good](std::size_t offset, std::size_t len) {
    Bytes bad = good;
    std::fill(bad.begin() + static_cast<std::ptrdiff_t>(offset),
              bad.begin() + static_cast<std::ptrdiff_t>(offset + len), 0);
    return bad;
  };
  EXPECT_THROW(groupsig::Signature::from_bytes(zeroed(40, 33)), Error);   // t1
  EXPECT_THROW(groupsig::Signature::from_bytes(zeroed(73, 33)), Error);   // t2
  EXPECT_THROW(groupsig::Signature::from_bytes(zeroed(106, 65)), Error);  // t_hat
}

TEST_F(PointSerdeTest, MessageRejectsIdentityDhShare) {
  proto::RouterCertificate cert;
  cert.router_id = 7;
  cert.public_key = curve::G1::infinity();
  cert.expires_at = 1000;
  EXPECT_THROW(proto::RouterCertificate::from_bytes(cert.to_bytes()), Error);

  cert.public_key = curve::Bn254::get().g1_gen * curve::Fr::from_u64(9);
  EXPECT_NO_THROW(proto::RouterCertificate::from_bytes(cert.to_bytes()));
}

}  // namespace
}  // namespace peace
