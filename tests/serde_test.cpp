#include "common/serde.hpp"

#include <gtest/gtest.h>

namespace peace {
namespace {

TEST(Serde, RoundTripAllTypes) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.bytes(to_bytes("hello"));
  w.str("world");
  w.raw(to_bytes("xyz"));

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.bytes(), to_bytes("hello"));
  EXPECT_EQ(r.str(), "world");
  EXPECT_EQ(r.raw(3), to_bytes("xyz"));
  EXPECT_TRUE(r.empty());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serde, TruncationThrows) {
  Writer w;
  w.u32(42);
  Reader r(w.data());
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_THROW(r.u32(), Error);
}

TEST(Serde, LengthPrefixValidated) {
  // A length prefix larger than the remaining buffer must throw, not
  // allocate or read out of bounds.
  Bytes evil = {0xff, 0xff, 0xff, 0xff, 0x01};
  Reader r(evil);
  EXPECT_THROW(r.bytes(), Error);
}

TEST(Serde, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_end(), Error);
}

TEST(Serde, EmptyBytes) {
  Writer w;
  w.bytes({});
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.empty());
}

TEST(Serde, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{1, 2, 3, 4}));
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x7f, 0x80, 0xff};
  EXPECT_EQ(to_hex(b), "007f80ff");
  EXPECT_EQ(from_hex("007f80ff"), b);
  EXPECT_EQ(from_hex("007F80FF"), b);
  EXPECT_THROW(from_hex("abc"), Error);
  EXPECT_THROW(from_hex("zz"), Error);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(to_bytes("same"), to_bytes("same")));
  EXPECT_FALSE(ct_equal(to_bytes("same"), to_bytes("sane")));
  EXPECT_FALSE(ct_equal(to_bytes("short"), to_bytes("longer")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, XorBytes) {
  const Bytes a = {0xff, 0x0f, 0x00};
  const Bytes b = {0x0f, 0x0f};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0x00, 0x00}));
  // Involution when lengths match the first operand.
  EXPECT_EQ(xor_bytes(xor_bytes(a, b), b), a);
}

TEST(Bytes, Concat) {
  EXPECT_EQ(concat(to_bytes("ab"), to_bytes("cd"), to_bytes("e")),
            to_bytes("abcde"));
}

}  // namespace
}  // namespace peace
