// The WMN substrate end-to-end: beaconing, auto-connect authentication,
// peer links, multihop greedy relay, roaming, loss, and revocation-list
// dissemination through the simulated network.
#include "mesh/network.hpp"

#include <gtest/gtest.h>

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

class MeshTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  MeshTest()
      : no_(crypto::Drbg::from_string("mesh-no")),
        gm_(no_.register_group("city", 32, ttp_)),
        net_(sim_, crypto::Drbg::from_string("mesh-net")) {}

  std::unique_ptr<proto::User> make_user(const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no_.params(), crypto::Drbg::from_string("mesh-" + uid));
    user->complete_enrollment(gm_.enroll(uid, ttp_));
    return user;
  }

  proto::NetworkOperator no_;
  proto::TrustedThirdParty ttp_;
  proto::GroupManager gm_;
  Simulator sim_;
  MeshNetwork net_;
};

TEST_F(MeshTest, UserInCoverageConnects) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId u = net_.add_user({50, 0}, make_user("u1"));
  net_.start_beaconing(100, 1000, 3000);
  sim_.run_until(5000);
  EXPECT_TRUE(net_.is_connected(u));
  EXPECT_TRUE(net_.serving_router(u).has_value());
}

TEST_F(MeshTest, UserOutOfCoverageDoesNot) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId far = net_.add_user({1000, 1000}, make_user("far"));
  net_.start_beaconing(100, 1000, 3000);
  sim_.run_until(5000);
  EXPECT_FALSE(net_.is_connected(far));
}

TEST_F(MeshTest, DirectDataDelivery) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId u = net_.add_user({40, 0}, make_user("u1"));
  net_.start_beaconing(100, 1000, 1100);
  sim_.run_until(2000);
  ASSERT_TRUE(net_.is_connected(u));
  EXPECT_TRUE(net_.send_data(u, as_bytes("hello metro mesh")));
  EXPECT_EQ(net_.stats().data_delivered, 1u);
  EXPECT_EQ(net_.router(r).stats().accepted, 1u);
}

TEST_F(MeshTest, MultihopRelayDelivery) {
  // User at 200m: inside router coverage (250) for auth, outside the 80m
  // data radio — data must relay through the chain of peers.
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId near = net_.add_user({60, 0}, make_user("near"));
  const NodeId mid = net_.add_user({130, 0}, make_user("mid"));
  const NodeId far = net_.add_user({200, 0}, make_user("far"));
  net_.start_beaconing(100, 1000, 1100);
  sim_.run_until(2000);
  ASSERT_TRUE(net_.is_connected(far));
  net_.establish_peer_links();
  sim_.run_until(3000);

  ASSERT_TRUE(net_.send_data(far, as_bytes("relayed")));
  EXPECT_EQ(net_.stats().data_delivered, 1u);
  EXPECT_EQ(net_.stats().relay_hops_total, 2u);  // far -> mid -> near -> router
  (void)near;
  (void)mid;
}

TEST_F(MeshTest, RelayStuckWithoutPeers) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId far = net_.add_user({200, 0}, make_user("far"));
  net_.start_beaconing(100, 1000, 1100);
  sim_.run_until(2000);
  ASSERT_TRUE(net_.is_connected(far));
  // No peer links established: greedy relay has no next hop.
  EXPECT_FALSE(net_.send_data(far, as_bytes("lost")));
  EXPECT_EQ(net_.stats().data_undeliverable, 1u);
}

TEST_F(MeshTest, ManyUsersAllConnect) {
  net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_router({400, 0}, no_, kFarFuture);
  std::vector<NodeId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(net_.add_user({40.0 * i, 10.0}, make_user(std::string("u") + std::to_string(i))));
  }
  net_.start_beaconing(100, 500, 2100);
  sim_.run_until(4000);
  for (const NodeId id : ids) EXPECT_TRUE(net_.is_connected(id)) << id;
}

TEST_F(MeshTest, LossyRadioEventuallyConnects) {
  Simulator sim;
  MeshNetwork lossy(sim, crypto::Drbg::from_string("lossy"),
                    RadioConfig{.router_range = 250, .user_range = 80, .loss_probability = 0.4, .latency_ms = 2});
  lossy.add_router({0, 0}, no_, kFarFuture);
  const NodeId u = lossy.add_user({50, 0}, make_user("lossy-user"));
  lossy.start_beaconing(100, 500, 20000);  // many retries available
  sim.run_until(30000);
  EXPECT_TRUE(lossy.is_connected(u));
  EXPECT_GT(lossy.stats().frames_lost, 0u);
}

TEST_F(MeshTest, RoamingUserReconnects) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId r2 = net_.add_router({1000, 0}, no_, kFarFuture);
  const NodeId u = net_.add_user({50, 0}, make_user("roamer"));
  net_.start_beaconing(100, 500, 600);
  sim_.run_until(1000);
  ASSERT_TRUE(net_.is_connected(u));
  const auto first = net_.serving_router(u);

  // Move into the second router's coverage and re-associate: the next
  // beacon triggers a fresh anonymous handshake with r2 — a brand-new
  // session, never a resumption (fresh identifiers per the privacy model).
  net_.move_user(u, {1000 + 50, 0});
  net_.reassociate(u);
  EXPECT_FALSE(net_.is_connected(u));
  net_.start_beaconing(1500, 500, 2600);
  sim_.run_until(3000);
  ASSERT_TRUE(net_.is_connected(u));
  EXPECT_NE(net_.serving_router(u), first);
  EXPECT_EQ(net_.serving_router(u), net_.router(r2).id());
  // Data flows through the new router.
  EXPECT_TRUE(net_.send_data(u, as_bytes("roamed traffic")));
}

TEST_F(MeshTest, RevocationListPropagatesThroughBeacons) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const auto enrollment = gm_.enroll("badguy", ttp_);
  auto bad = std::make_unique<proto::User>(
      "badguy", no_.params(), crypto::Drbg::from_string("badguy"));
  bad->complete_enrollment(enrollment);
  const NodeId b = net_.add_user({30, 0}, std::move(bad));

  no_.revoke_user_key(enrollment.index, 50);
  net_.push_revocation_lists(no_.current_crl(), no_.current_url());

  net_.start_beaconing(100, 500, 2100);
  sim_.run_until(4000);
  EXPECT_FALSE(net_.is_connected(b));

  // A good user connects through the same beacons.
  const NodeId g = net_.add_user({35, 0}, make_user("goodguy"));
  net_.start_beaconing(5000, 500, 6100);
  sim_.run_until(8000);
  EXPECT_TRUE(net_.is_connected(g));
}

TEST_F(MeshTest, TapsSeeAllTraffic) {
  net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_user({40, 0}, make_user("observed"));
  std::size_t taps = 0;
  net_.add_tap([&taps](const WireObservation&) { ++taps; });
  net_.start_beaconing(100, 1000, 1100);
  sim_.run_until(2000);
  EXPECT_GT(taps, 0u);
  EXPECT_EQ(net_.stats().frames_transmitted, taps);
}

TEST_F(MeshTest, ThreeLayerInternetDelivery) {
  // Paper Fig. 1: user -> router -> multihop backbone -> wired AP.
  // Routers 400 m apart (backbone range 500), AP at the far end.
  const NodeId r1 = net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_router({400, 0}, no_, kFarFuture);
  net_.add_router({800, 0}, no_, kFarFuture);
  net_.add_access_point({1200, 0});
  const NodeId u = net_.add_user({30, 0}, make_user("websurfer"));

  net_.start_beaconing(100, 1000, 1100);
  sim_.run_until(2000);
  ASSERT_TRUE(net_.is_connected(u));
  ASSERT_EQ(net_.serving_router(u), net_.router(r1).id());

  const auto hops = net_.backbone_hops_to_ap(r1);
  ASSERT_TRUE(hops.has_value());
  EXPECT_EQ(*hops, 3u);  // r1 -> r2 -> r3 -> AP

  EXPECT_TRUE(net_.send_to_internet(u, as_bytes("GET / HTTP/1.1")));
  EXPECT_EQ(net_.stats().internet_delivered, 1u);
  EXPECT_EQ(net_.stats().backbone_hops_total, 3u);
  EXPECT_EQ(net_.stats().backbone_mac_failures, 0u);
}

TEST_F(MeshTest, InternetUnreachableWithoutAp) {
  net_.add_router({0, 0}, no_, kFarFuture);
  const NodeId u = net_.add_user({30, 0}, make_user("isolated"));
  net_.start_beaconing(100, 1000, 1100);
  sim_.run_until(2000);
  ASSERT_TRUE(net_.is_connected(u));
  EXPECT_FALSE(net_.send_to_internet(u, as_bytes("hello?")));
  EXPECT_GE(net_.stats().data_undeliverable, 1u);
}

TEST_F(MeshTest, BackbonePartitionDetected) {
  // A gap larger than backbone_range splits the backbone: the near router
  // cannot reach the AP behind the gap.
  const NodeId r1 = net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_router({2000, 0}, no_, kFarFuture);  // unreachable island
  net_.add_access_point({2400, 0});
  EXPECT_FALSE(net_.backbone_hops_to_ap(r1).has_value());
  EXPECT_THROW(net_.backbone_hops_to_ap(999), Error);
}

TEST_F(MeshTest, ApAdjacentRouterIsZeroBackboneHops) {
  const NodeId r = net_.add_router({0, 0}, no_, kFarFuture);
  net_.add_access_point({100, 0});
  EXPECT_EQ(net_.backbone_hops_to_ap(r), 1u);
}

TEST_F(MeshTest, PositionsAndAccessors) {
  const NodeId r = net_.add_router({1, 2}, no_, kFarFuture);
  EXPECT_DOUBLE_EQ(net_.position(r).x, 1.0);
  EXPECT_EQ(net_.router_ids().size(), 1u);
  EXPECT_EQ(net_.user_ids().size(), 0u);
  EXPECT_THROW(net_.user(r), Error);
  EXPECT_THROW(net_.position(999), Error);
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

}  // namespace
}  // namespace peace::mesh
