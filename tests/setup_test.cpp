// PEACE scheme setup (paper IV.A): key generation, the NO/GM/TTP split
// distribution, credential blinding, router provisioning, and the
// partial-knowledge invariants each entity must satisfy.
#include <gtest/gtest.h>

#include "peace/user.hpp"

namespace peace::proto {
namespace {

class SetupTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  SetupTest() : no_(crypto::Drbg::from_string("setup-no")) {}

  NetworkOperator no_;
  TrustedThirdParty ttp_;
};

TEST_F(SetupTest, RegisterGroupAllocatesKeys) {
  GroupManager gm = no_.register_group("Company XYZ", 5, ttp_);
  EXPECT_EQ(gm.keys_remaining(), 5u);
  EXPECT_EQ(ttp_.stored_credentials(), 5u);
  EXPECT_EQ(no_.grt_size(), 5u);
  EXPECT_EQ(gm.name(), "Company XYZ");
}

TEST_F(SetupTest, MultipleGroupsGetDistinctIdsAndSecrets) {
  GroupManager a = no_.register_group("A", 2, ttp_);
  GroupManager b = no_.register_group("B", 2, ttp_);
  EXPECT_NE(a.id(), b.id());
  EXPECT_FALSE(a.group_secret() == b.group_secret());
  EXPECT_EQ(no_.grt_size(), 4u);
}

TEST_F(SetupTest, EnrollmentYieldsValidCredential) {
  GroupManager gm = no_.register_group("G", 3, ttp_);
  User user("alice", no_.params(), crypto::Drbg::from_string("alice"));
  user.complete_enrollment(gm.enroll("alice", ttp_));
  ASSERT_EQ(user.enrolled_groups().size(), 1u);
  EXPECT_TRUE(user.credential(gm.id()).is_valid(no_.params().gpk));
  EXPECT_EQ(gm.keys_remaining(), 2u);
}

TEST_F(SetupTest, UserInMultipleGroups) {
  GroupManager work = no_.register_group("employer", 2, ttp_);
  GroupManager golf = no_.register_group("golf club", 2, ttp_);
  User user("bob", no_.params(), crypto::Drbg::from_string("bob"));
  user.complete_enrollment(work.enroll("bob", ttp_));
  user.complete_enrollment(golf.enroll("bob", ttp_));
  EXPECT_EQ(user.enrolled_groups().size(), 2u);
  EXPECT_TRUE(user.credential(work.id()).is_valid(no_.params().gpk));
  EXPECT_TRUE(user.credential(golf.id()).is_valid(no_.params().gpk));
  // Same group secret within a group, different across groups.
  EXPECT_FALSE(user.credential(work.id()).grp == user.credential(golf.id()).grp);
}

TEST_F(SetupTest, EnrollmentExhaustionThrows) {
  GroupManager gm = no_.register_group("tiny", 1, ttp_);
  gm.enroll("u1", ttp_);
  EXPECT_THROW(gm.enroll("u2", ttp_), Error);
}

TEST_F(SetupTest, BlindingRoundTrip) {
  crypto::Drbg rng = crypto::Drbg::from_string("blind");
  const G1 a = curve::Bn254::get().g1_gen * curve::random_fr(rng);
  const Fr x = curve::random_fr(rng);
  const Bytes blinded = blind_credential(a, x);
  EXPECT_EQ(unblind_credential(blinded, x), a);
  // The blinded blob is not the serialized point itself.
  EXPECT_NE(blinded, curve::g1_to_bytes(a));
  // Wrong x fails to unblind to a valid point (overwhelmingly), or yields a
  // different point.
  const Fr wrong = x + Fr::one();
  try {
    EXPECT_NE(unblind_credential(blinded, wrong), a);
  } catch (const Error&) {
    // not even a curve point — fine
  }
}

TEST_F(SetupTest, GmNeverLearnsCredentialA) {
  // Structural check: everything the GM stores is (index, uid, grp, x);
  // reconstructing A from (grp, x) requires gamma, which only NO holds.
  GroupManager gm = no_.register_group("G", 2, ttp_);
  const auto enrollment = gm.enroll("carol", ttp_);
  // The blinded blob the GM relays is indistinguishable from random without
  // x... here we check at least that it is not the raw credential: if GM
  // tried to parse it as a point it would not be the member's A.
  User user("carol", no_.params(), crypto::Drbg::from_string("carol"));
  user.complete_enrollment(enrollment);
  const G1& real_a = user.credential(gm.id()).a;
  EXPECT_NE(enrollment.blinded_credential, curve::g1_to_bytes(real_a));
}

TEST_F(SetupTest, TtpKnowsUidButNotKey) {
  GroupManager gm = no_.register_group("G", 2, ttp_);
  const auto enrollment = gm.enroll("dave", ttp_);
  // TTP learned which uid the index went to (it delivered the blob)...
  EXPECT_EQ(ttp_.uid_for_index(enrollment.index), "dave");
  // ...but its entire store is blinded blobs.
  for (const auto& [idx, blob] : ttp_.blinded_store()) {
    EXPECT_EQ(blob.size(), curve::kG1CompressedSize);
  }
}

TEST_F(SetupTest, TtpRejectsUnsignedDeposit) {
  crypto::Drbg rng = crypto::Drbg::from_string("ttp-unsigned");
  TrustedThirdParty ttp;
  const curve::EcdsaKeyPair mallory = curve::EcdsaKeyPair::generate(rng);
  Bytes blob(curve::kG1CompressedSize, 7);
  const auto bad_sig = mallory.sign(as_bytes("junk"), rng);
  EXPECT_THROW(
      ttp.deposit(KeyIndex{1, 0}, blob, bad_sig, no_.npk(), rng), Error);
}

TEST_F(SetupTest, TtpDeliverUnknownIndexThrows) {
  EXPECT_THROW(ttp_.deliver(KeyIndex{99, 0}, "eve"), Error);
}

TEST_F(SetupTest, RouterProvisioning) {
  const auto p = no_.provision_router(7, /*expires_at=*/1000000);
  EXPECT_EQ(p.certificate.router_id, 7u);
  EXPECT_EQ(p.certificate.public_key, p.keypair.public_key());
  EXPECT_TRUE(curve::ecdsa_verify(no_.npk(), p.certificate.signed_payload(),
                                  p.certificate.signature));
  // Round-trips on the wire.
  const auto again = RouterCertificate::from_bytes(p.certificate.to_bytes());
  EXPECT_EQ(again.router_id, p.certificate.router_id);
  EXPECT_EQ(again.public_key, p.certificate.public_key);
}

TEST_F(SetupTest, RevocationListsSignedAndVersioned) {
  GroupManager gm = no_.register_group("G", 2, ttp_);
  EXPECT_EQ(no_.current_url().version, 0u);
  no_.revoke_user_key(KeyIndex{gm.id(), 0}, 111);
  const auto url = no_.current_url();
  EXPECT_EQ(url.version, 1u);
  EXPECT_EQ(url.entries.size(), 1u);
  EXPECT_TRUE(curve::ecdsa_verify(no_.npk(), url.signed_payload(),
                                  url.signature));
  no_.revoke_router(3, 222);
  EXPECT_EQ(no_.current_crl().version, 1u);
  EXPECT_THROW(no_.revoke_user_key(KeyIndex{99, 99}, 1), Error);
}

TEST_F(SetupTest, EnrollmentReceiptChain) {
  // Paper IV.A non-repudiation: the user signs for what they received; the
  // GM verifies and archives; a later trace can present the evidence.
  GroupManager gm = no_.register_group("G", 2, ttp_);
  User user("ursula", no_.params(), crypto::Drbg::from_string("ursula"));
  const auto enrollment = gm.enroll("ursula", ttp_);
  const auto receipt = user.complete_enrollment(enrollment);
  gm.record_receipt(enrollment, user.receipt_public_key(), receipt);

  const auto on_file = gm.receipt_for(enrollment.index);
  ASSERT_TRUE(on_file.has_value());
  EXPECT_EQ(on_file->user_public_key, user.receipt_public_key());
  // Independently re-verifiable evidence.
  EXPECT_TRUE(curve::ecdsa_verify(
      on_file->user_public_key,
      GroupManager::enrollment_receipt_payload(enrollment),
      on_file->signature));
  // No receipt for unassigned indices.
  EXPECT_FALSE(gm.receipt_for(KeyIndex{gm.id(), 99}).has_value());
}

TEST_F(SetupTest, ForgedReceiptRejected) {
  GroupManager gm = no_.register_group("G", 2, ttp_);
  User user("victor", no_.params(), crypto::Drbg::from_string("victor"));
  const auto enrollment = gm.enroll("victor", ttp_);
  auto receipt = user.complete_enrollment(enrollment);
  receipt.s = receipt.s + curve::Fr::one();
  EXPECT_THROW(
      gm.record_receipt(enrollment, user.receipt_public_key(), receipt),
      Error);
  // A receipt signed by someone else's key also fails.
  User mallory("mallory", no_.params(), crypto::Drbg::from_string("mal"));
  const auto good = user.complete_enrollment(enrollment);
  EXPECT_THROW(
      gm.record_receipt(enrollment, mallory.receipt_public_key(), good),
      Error);
}

TEST_F(SetupTest, CorruptedEnrollmentDetected) {
  GroupManager gm = no_.register_group("G", 2, ttp_);
  auto enrollment = gm.enroll("mallory-victim", ttp_);
  enrollment.blinded_credential[5] ^= 0x01;
  User user("mallory-victim", no_.params(), crypto::Drbg::from_string("v"));
  EXPECT_THROW(user.complete_enrollment(enrollment), Error);
}

}  // namespace
}  // namespace peace::proto
