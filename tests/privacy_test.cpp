// The privacy model of Sec. III.C: anonymity and session unlinkability
// against eavesdroppers, session identifiers that carry no identity,
// and the structural "who knows what" guarantees.
#include <gtest/gtest.h>

#include <set>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

class PrivacyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  PrivacyTest() : no_(crypto::Drbg::from_string("privacy-no")) {
    gm_ = std::make_unique<GroupManager>(no_.register_group("G", 8, ttp_));
    auto provision = no_.provision_router(1, kFarFuture);
    router_ = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("privacy-router"));
    router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  }

  User enroll(const std::string& uid) {
    User user(uid, no_.params(), crypto::Drbg::from_string("priv-" + uid));
    user.complete_enrollment(gm_->enroll(uid, ttp_));
    return user;
  }

  AccessRequest handshake_m2(User& user, Timestamp now) {
    const BeaconMessage beacon = router_->make_beacon(now);
    auto m2 = user.process_beacon(beacon, now);
    EXPECT_TRUE(m2.has_value());
    return *m2;
  }

  static constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> gm_;
  std::unique_ptr<MeshRouter> router_;
};

TEST_F(PrivacyTest, NoIdentifierOnTheWire) {
  // The serialized M.2 must not contain the uid, in any framing.
  User alice = enroll("alice-identity-string");
  const AccessRequest m2 = handshake_m2(alice, 1000);
  const Bytes wire = m2.to_bytes();
  const std::string uid = "alice-identity-string";
  const std::string wire_str(wire.begin(), wire.end());
  EXPECT_EQ(wire_str.find(uid), std::string::npos);
}

TEST_F(PrivacyTest, SessionsOfSameUserShareNoTokens) {
  // Every element of two M.2's from the same user differs: fresh DH share,
  // fresh nonce, fresh T1/T2/T_hat (randomized encryption of the same A).
  User alice = enroll("alice");
  const AccessRequest a = handshake_m2(alice, 1000);
  const AccessRequest b = handshake_m2(alice, 2000);
  EXPECT_NE(curve::g1_to_bytes(a.g_rj), curve::g1_to_bytes(b.g_rj));
  EXPECT_FALSE(a.signature.nonce == b.signature.nonce);
  EXPECT_NE(curve::g1_to_bytes(a.signature.t1),
            curve::g1_to_bytes(b.signature.t1));
  EXPECT_NE(curve::g1_to_bytes(a.signature.t2),
            curve::g1_to_bytes(b.signature.t2));
  EXPECT_NE(curve::g2_to_bytes(a.signature.t_hat),
            curve::g2_to_bytes(b.signature.t_hat));
}

TEST_F(PrivacyTest, SessionIdsAreFreshRandomPairs) {
  // Paper: "every data session is identified only through pairs of fresh
  // random numbers". All session ids across users and time are distinct.
  User alice = enroll("alice");
  User bob = enroll("bob");
  std::set<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    for (User* u : {&alice, &bob}) {
      const BeaconMessage beacon = router_->make_beacon(1000 + i * 50);
      auto m2 = u->process_beacon(beacon, 1000 + i * 50);
      ASSERT_TRUE(m2.has_value());
      auto outcome = router_->handle_access_request(*m2, 1001 + i * 50);
      ASSERT_TRUE(outcome.has_value());
      ids.insert(to_hex(outcome->session_id));
    }
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST_F(PrivacyTest, RouterLearnsLegitimacyNotIdentity) {
  // The router's entire post-handshake state is keyed by session id; no
  // uid ever reaches it. (MeshRouter has no API that could return one.)
  User alice = enroll("alice");
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice.process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto outcome = router_->handle_access_request(*m2, 1001);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(router_->stats().accepted, 1u);
}

TEST_F(PrivacyTest, DifferentMembersSignaturesLookAlike) {
  // A verifier (and any eavesdropper) sees valid signatures from both and
  // verify_proof outputs the same bit; nothing in the public verification
  // distinguishes the member. Here: both verify, and neither contains the
  // other's credential token detectably via Eq.3 without grt.
  User alice = enroll("alice");
  User bob = enroll("bob");
  const AccessRequest ma = handshake_m2(alice, 1000);
  const AccessRequest mb = handshake_m2(bob, 2000);
  EXPECT_TRUE(groupsig::verify_proof(no_.params().gpk, ma.signed_payload(),
                                     ma.signature));
  EXPECT_TRUE(groupsig::verify_proof(no_.params().gpk, mb.signed_payload(),
                                     mb.signature));
}

TEST_F(PrivacyTest, CompromisedMemberCannotTestOthers) {
  // An adversary holding bob's full gsk still cannot run Eq.3 against
  // alice's signature with any token derivable from bob's key material.
  User alice = enroll("alice");
  User bob = enroll("bob");
  const AccessRequest ma = handshake_m2(alice, 1000);
  const groupsig::MemberKey& bob_key = bob.credential(gm_->id());
  // Bob's own token does not match alice's signature...
  EXPECT_FALSE(groupsig::matches_token(no_.params().gpk, ma.signed_payload(),
                                       ma.signature,
                                       groupsig::RevocationToken{bob_key.a}));
  // ...and alice's A is not computable from (grp, x_bob) without gamma —
  // the audit linkage stays exclusive to NO.
  const auto audit = no_.audit(ma);
  ASSERT_TRUE(audit.has_value());
  EXPECT_NE(audit->token.a, bob_key.a);
}

TEST_F(PrivacyTest, EpochModeLeaksExactlyLinkability) {
  // The fast-revocation trade-off (Sec. V.C): within one epoch a passive
  // verifier CAN link two signatures of the same member, which is exactly
  // what the default per-message mode prevents. Demonstrate both sides.
  User alice = enroll("alice");
  const groupsig::MemberKey& key = alice.credential(gm_->id());
  crypto::Drbg rng = crypto::Drbg::from_string("epoch-priv");

  const auto s1 = groupsig::sign(no_.params().gpk, key, as_bytes("m1"), rng, 5);
  const auto s2 = groupsig::sign(no_.params().gpk, key, as_bytes("m2"), rng, 5);
  EXPECT_TRUE(groupsig::epoch_linkability_tag(no_.params().gpk, s1) ==
              groupsig::epoch_linkability_tag(no_.params().gpk, s2));

  // Default mode: the analogous tag is computed over per-message bases and
  // differs between the two sessions, so it links nothing.
  const auto d1 = groupsig::sign(no_.params().gpk, key, as_bytes("m1"), rng);
  const auto d2 = groupsig::sign(no_.params().gpk, key, as_bytes("m2"), rng);
  EXPECT_NE(curve::g1_to_bytes(d1.t2), curve::g1_to_bytes(d2.t2));
}

TEST_F(PrivacyTest, TtpStateContainsNoCredential) {
  // TTP's store is blinded blobs only; unblinding any entry with the wrong
  // secret fails or yields a non-credential.
  User alice = enroll("alice");
  (void)alice;
  for (const auto& [idx, blob] : ttp_.blinded_store()) {
    try {
      const G1 guess = unblind_credential(blob, Fr::from_u64(12345));
      // If it parses, it is (overwhelmingly) not a valid credential under
      // the SDH relation for any known (grp, x).
      EXPECT_TRUE(guess.is_on_curve());
    } catch (const Error&) {
      // Not even a point — fine.
    }
  }
}

TEST_F(PrivacyTest, PeerSessionsEquallyUnlinkable) {
  User alice = enroll("alice");
  User bob = enroll("bob");
  const BeaconMessage beacon = router_->make_beacon(1000);
  ASSERT_TRUE(alice.process_beacon(beacon, 1000).has_value());
  ASSERT_TRUE(bob.process_beacon(beacon, 1000).has_value());

  const PeerHello h1 = alice.make_peer_hello(beacon.g, 1100);
  const PeerHello h2 = alice.make_peer_hello(beacon.g, 1200);
  EXPECT_NE(curve::g1_to_bytes(h1.g_rj), curve::g1_to_bytes(h2.g_rj));
  EXPECT_NE(curve::g1_to_bytes(h1.signature.t2),
            curve::g1_to_bytes(h2.signature.t2));
}

}  // namespace
}  // namespace peace::proto
