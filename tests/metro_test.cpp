// The metro-scale sharded simulation driver (docs/ARCHITECTURE.md §7):
// the bit-identity contract (a 1-shard metro replays the pre-sharding
// single event loop exactly), cross-shard roaming through mailbox
// handoffs, partition park-and-retry, backbone internet relay, the
// bounded inbox/arena caps, per-shard event budgets, and the
// order-independent cross-shard stats merges the obs layer relies on.
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "mesh/metro.hpp"
#include "obs/metrics.hpp"
#include "peace/metrics_export.hpp"

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

class MetroTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

/// Operator-side state for one run. Seeded, so two Worlds built from the
/// same seed issue byte-identical credentials.
struct World {
  explicit World(const std::string& seed)
      : no(crypto::Drbg::from_string(seed + "-no")),
        gm(no.register_group("G", 8, ttp)) {}
  std::unique_ptr<proto::User> make_user(const std::string& seed,
                                         const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no.params(), crypto::Drbg::from_string(seed + "-" + uid));
    user->complete_enrollment(gm.enroll(uid, ttp));
    return user;
  }
  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
};

/// One observed transmission, for byte-exact run comparison.
struct Frame {
  std::string kind;
  Bytes payload;
  bool operator==(const Frame&) const = default;
};

void log_frames(MeshNetwork& net, std::vector<Frame>& log) {
  net.add_tap([&log](const WireObservation& obs) {
    log.push_back(Frame{obs.kind, obs.payload});
  });
}

TEST_F(MetroTest, SingleShardBitIdentity) {
  // The contract from shard.hpp: a topology that fits in one shard runs
  // bit-identically to the plain single-loop MeshNetwork — same DRBG seed,
  // same event order (chunked run_until visits events exactly as one call
  // would), hence byte-identical wire traffic under 20% radio loss.
  const std::string seed = "metro-bitid";
  const RadioConfig radio{.router_range = 250,
                          .user_range = 80,
                          .loss_probability = 0.2,
                          .latency_ms = 2};

  std::vector<Frame> plain_log;
  std::uint64_t plain_events = 0;
  NetworkStats plain_stats;
  std::size_t plain_connected = 0;
  {
    World w(seed);
    Simulator sim;
    MeshNetwork net(sim, crypto::Drbg::from_string(seed + "-net"), radio);
    net.add_router({0, 0}, w.no, kFarFuture);
    for (int i = 0; i < 3; ++i)
      net.add_user({30.0 * (i + 1), 0},
                   w.make_user(seed, "u" + std::to_string(i)));
    log_frames(net, plain_log);
    net.start_beaconing(100, 500, 3000);
    sim.run_until(5000);
    plain_events = sim.events_processed();
    plain_stats = net.stats();
    for (const NodeId id : net.user_ids())
      plain_connected += net.is_connected(id) ? 1 : 0;
  }

  std::vector<Frame> metro_log;
  {
    World w(seed);
    MetroConfig mc;
    mc.tick_ms = 250;  // chunk the identical timeline into 20 barriers
    MetroSimulation metro(mc);
    const ShardId sid = metro.add_shard("seg", seed + "-net", radio);
    MeshNetwork& net = metro.shard(sid).net();
    net.add_router({0, 0}, w.no, kFarFuture);
    for (int i = 0; i < 3; ++i)
      metro.add_user(sid, {30.0 * (i + 1), 0},
                     w.make_user(seed, "u" + std::to_string(i)));
    log_frames(net, metro_log);
    net.start_beaconing(100, 500, 3000);
    metro.run_until(5000);

    EXPECT_EQ(metro.sim_events_total(), plain_events);
    EXPECT_EQ(net.stats().frames_transmitted, plain_stats.frames_transmitted);
    EXPECT_EQ(net.stats().frames_lost, plain_stats.frames_lost);
    std::size_t connected = 0;
    for (const NodeId id : net.user_ids())
      connected += net.is_connected(id) ? 1 : 0;
    EXPECT_EQ(connected, plain_connected);
    // No mailbox traffic can exist with one shard.
    EXPECT_EQ(metro.stats().msgs_routed, 0u);
    EXPECT_GT(metro.stats().barriers, 1u);
  }

  ASSERT_FALSE(plain_log.empty());
  // Every frame, byte for byte, down to each nonce and loss draw.
  EXPECT_EQ(metro_log, plain_log);
}

TEST_F(MetroTest, CrossShardRoamingReauthenticatesAndDeltasReachEveryShard) {
  const std::string seed = "metro-roam";
  World w(seed);
  const RadioConfig radio{.router_range = 250,
                          .user_range = 80,
                          .loss_probability = 0.0,
                          .latency_ms = 2};
  MetroSimulation metro;
  const ShardId east = metro.add_shard("east", seed + "/east", radio);
  const ShardId west = metro.add_shard("west", seed + "/west", radio);
  metro.connect_shards(east, west);
  metro.shard(east).net().add_router({0, 0}, w.no, kFarFuture);
  metro.shard(west).net().add_router({0, 0}, w.no, kFarFuture);
  const MetroUserId commuter =
      metro.add_user(east, {50, 0}, w.make_user(seed, "commuter"));
  metro.shard(east).net().start_beaconing(100, 500, 20000);
  metro.shard(west).net().start_beaconing(100, 500, 20000);

  metro.run_until(3000);
  {
    const auto loc = metro.locate_user(commuter);
    ASSERT_TRUE(loc.has_value());
    EXPECT_EQ(loc->shard, east);
    EXPECT_TRUE(metro.shard(east).net().is_connected(loc->node));
  }

  // Roam east -> west: extracted now, in transit until the next barrier.
  metro.roam_user(commuter, west, {60, 0});
  EXPECT_TRUE(metro.user_in_transit(commuter));
  EXPECT_FALSE(metro.locate_user(commuter).has_value());
  EXPECT_EQ(metro.shard(east).net().stats().users_removed, 1u);
  EXPECT_EQ(metro.shard(east).net().user_count(), 0u);

  metro.run_until(3000 + metro.config().tick_ms);
  const auto arrived = metro.locate_user(commuter);
  ASSERT_TRUE(arrived.has_value());
  EXPECT_EQ(arrived->shard, west);
  EXPECT_FALSE(metro.user_in_transit(commuter));
  EXPECT_EQ(metro.shard(east).stats().handoffs_out, 1u);
  EXPECT_EQ(metro.shard(west).stats().handoffs_in, 1u);
  EXPECT_GE(metro.stats().msgs_routed, 1u);
  EXPECT_EQ(metro.stats().handoffs_parked, 0u);

  // Sessions never cross segments: the user re-authenticates on the next
  // west beacon (a fresh anonymous handshake, per the privacy model).
  EXPECT_FALSE(metro.shard(west).net().is_connected(arrived->node));
  metro.run_until(8000);
  EXPECT_TRUE(metro.shard(west).net().is_connected(arrived->node));

  // A revocation wave reaches every segment's RCU snapshot (loss 0, so one
  // announcement converges both shards deterministically).
  const auto v0 = metro.shard(east).net().revocation()->url_version();
  EXPECT_EQ(metro.shard(west).net().revocation()->url_version(), v0);
  w.no.revoke_user_key(w.gm.enroll("mallory", w.ttp).index, metro.now());
  const auto announce = w.no.make_delta_announcement(0, 0);
  metro.announce_rl_deltas(announce, w.no);
  metro.run_until(9000);
  const auto east_v = metro.shard(east).net().revocation()->url_version();
  const auto west_v = metro.shard(west).net().revocation()->url_version();
  EXPECT_GT(east_v, v0);
  EXPECT_EQ(east_v, west_v);
  EXPECT_EQ(east_v, w.no.current_url().version);
}

TEST_F(MetroTest, PartitionParksHandoffsUntilHealed) {
  // The chaos variant: a user roams across a partitioned backbone link —
  // the handoff parks (never silently dies), survives the partition, and
  // the user reconverges after the heal.
  const std::string seed = "metro-chaos";
  World w(seed);
  const RadioConfig radio{.router_range = 250,
                          .user_range = 80,
                          .loss_probability = 0.0,
                          .latency_ms = 2};
  MetroSimulation metro;
  const ShardId a = metro.add_shard("seg-a", seed + "/a", radio);
  const ShardId b = metro.add_shard("seg-b", seed + "/b", radio);
  metro.connect_shards(a, b);
  metro.shard(a).net().add_router({0, 0}, w.no, kFarFuture);
  metro.shard(b).net().add_router({0, 0}, w.no, kFarFuture);
  const MetroUserId uid = metro.add_user(a, {40, 0}, w.make_user(seed, "u"));
  metro.shard(a).net().start_beaconing(100, 500, 30000);
  metro.shard(b).net().start_beaconing(100, 500, 30000);
  metro.run_until(2000);

  metro.set_shard_link_blocked(a, b, true);
  metro.roam_user(uid, b, {45, 0});
  metro.run_until(2000 + 3 * metro.config().tick_ms);
  // Parked, not dropped: the user is in limbo but alive.
  EXPECT_GE(metro.stats().handoffs_parked, 1u);
  EXPECT_EQ(metro.stats().handoffs_dropped, 0u);
  EXPECT_TRUE(metro.user_in_transit(uid));
  EXPECT_FALSE(metro.locate_user(uid).has_value());
  EXPECT_EQ(metro.shard(b).stats().handoffs_in, 0u);
  EXPECT_EQ(metro.user_count(), 1u);

  metro.set_shard_link_blocked(a, b, false);
  metro.run_until(metro.now() + metro.config().tick_ms);
  const auto loc = metro.locate_user(uid);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->shard, b);
  // Reconverged: authenticated in the new segment after the heal.
  metro.run_until(metro.now() + 5000);
  EXPECT_TRUE(metro.shard(b).net().is_connected(loc->node));
  EXPECT_EQ(metro.stats().handoffs_dropped, 0u);
}

TEST_F(MetroTest, CrossShardRunsAreReproducible) {
  // Two-shard determinism: the mailbox/barrier machinery adds no hidden
  // nondeterminism — identical seeds give byte-identical wire traffic on
  // every shard, including across a roaming handoff.
  const auto run = [](const std::string& seed) {
    World w(seed);
    const RadioConfig radio{.router_range = 250,
                            .user_range = 80,
                            .loss_probability = 0.1,
                            .latency_ms = 2};
    MetroSimulation metro;
    const ShardId s0 = metro.add_shard("s0", seed + "/s0", radio);
    const ShardId s1 = metro.add_shard("s1", seed + "/s1", radio);
    metro.connect_shards(s0, s1);
    metro.shard(s0).net().add_router({0, 0}, w.no, kFarFuture);
    metro.shard(s1).net().add_router({0, 0}, w.no, kFarFuture);
    const MetroUserId uid =
        metro.add_user(s0, {50, 0}, w.make_user(seed, "u"));
    std::vector<Frame> log;
    log_frames(metro.shard(s0).net(), log);
    log_frames(metro.shard(s1).net(), log);
    metro.shard(s0).net().start_beaconing(100, 500, 6000);
    metro.shard(s1).net().start_beaconing(100, 500, 6000);
    metro.run_until(2000);
    metro.roam_user(uid, s1, {30, 0});
    metro.run_until(7000);
    return std::pair{std::move(log), metro.sim_events_total()};
  };
  const auto first = run("metro-repro");
  const auto second = run("metro-repro");
  ASSERT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST_F(MetroTest, InboxCapShedsOverflow) {
  MetroConfig mc;
  mc.shard_inbox_cap = 2;
  MetroSimulation metro(mc);
  const ShardId src = metro.add_shard("src", "inbox-src");
  const ShardId dst = metro.add_shard("dst", "inbox-dst");
  metro.connect_shards(src, dst);
  std::size_t handled = 0;
  metro.set_frame_handler(
      [&](ShardId, std::uint32_t, BytesView) { ++handled; });
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(metro.post_frame(src, dst, as_bytes("overflow"), 7));
  metro.run_until(metro.config().tick_ms);
  // Two fit the inbox; three shed at the cap instead of growing memory.
  EXPECT_EQ(handled, 2u);
  EXPECT_EQ(metro.shard(dst).stats().msgs_in, 2u);
  EXPECT_EQ(metro.shard(dst).stats().inbox_dropped, 3u);
}

TEST_F(MetroTest, ArenaCapShedsPostedFrames) {
  MetroConfig mc;
  mc.shard_frame_cap = 2;
  MetroSimulation metro(mc);
  const ShardId src = metro.add_shard("src", "arena-src");
  const ShardId dst = metro.add_shard("dst", "arena-dst");
  metro.connect_shards(src, dst);
  EXPECT_TRUE(metro.post_frame(src, dst, as_bytes("a"), 1));
  EXPECT_TRUE(metro.post_frame(src, dst, as_bytes("b"), 1));
  // The origin arena is at its cap: shedding, counted, no growth.
  EXPECT_FALSE(metro.post_frame(src, dst, as_bytes("c"), 1));
  EXPECT_EQ(metro.stats().frames_posted, 2u);
  EXPECT_EQ(metro.stats().frames_shed, 1u);
  metro.run_until(metro.config().tick_ms);
  // Delivered frames return their buffers; posting works again.
  EXPECT_TRUE(metro.post_frame(src, dst, as_bytes("d"), 1));
}

TEST_F(MetroTest, InternetRelayHopsTowardApShard) {
  MetroSimulation metro;
  const ShardId s0 = metro.add_shard("s0", "relay-0");
  const ShardId s1 = metro.add_shard("s1", "relay-1");
  const ShardId s2 = metro.add_shard("s2", "relay-2");
  metro.connect_shards(s0, s1);
  metro.connect_shards(s1, s2);
  metro.shard(s2).net().add_access_point({0, 0});

  // One shard hop per tick: s0 -> s1 -> s2 (the AP shard) in two barriers.
  EXPECT_TRUE(metro.relay_to_internet(s0, as_bytes("uplink")));
  metro.run_until(metro.config().tick_ms);
  EXPECT_EQ(metro.stats().relay_delivered, 0u);
  metro.run_until(2 * metro.config().tick_ms);
  EXPECT_EQ(metro.stats().relay_delivered, 1u);

  // A segment with its own AP delivers without touching the backbone.
  EXPECT_TRUE(metro.relay_to_internet(s2, as_bytes("local")));
  EXPECT_EQ(metro.stats().relay_delivered, 2u);

  // Partition the only path to an AP: the relay is refused and counted.
  metro.set_shard_link_blocked(s1, s2, true);
  EXPECT_FALSE(metro.relay_to_internet(s0, as_bytes("stranded")));
  EXPECT_EQ(metro.stats().relay_dropped, 1u);
}

TEST_F(MetroTest, EventBudgetExhaustionNamesShard) {
  MetroConfig mc;
  mc.shard_event_budget = 25;
  MetroSimulation metro(mc);
  metro.add_shard("quiet-seg", "budget-quiet");
  const ShardId noisy = metro.add_shard("overload-seg", "budget-noisy");
  Simulator& sim = metro.shard(noisy).sim();
  std::function<void()> forever = [&] { sim.schedule_in(1, forever); };
  sim.schedule(0, forever);
  try {
    metro.run_until(1000);
    FAIL() << "expected the per-shard event budget to throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("overload-seg"), std::string::npos) << msg;
    EXPECT_NE(msg.find("event budget exhausted"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("quiet-seg"), std::string::npos) << msg;
  }
}

TEST_F(MetroTest, StatsMergeOrderIndependence) {
  // Satellite 3: cross-shard aggregation must not depend on shard visit
  // order. Generate real per-shard traffic, fold every stats family
  // forward and reverse, and demand identical merged values — including
  // through the obs registry snapshot the aggregate publish produces.
  const std::string seed = "metro-merge";
  World w(seed);
  const RadioConfig radio{.router_range = 250,
                          .user_range = 80,
                          .loss_probability = 0.1,
                          .latency_ms = 2};
  MetroSimulation metro;
  for (int i = 0; i < 3; ++i) {
    const std::string label = "seg-" + std::to_string(i);
    const ShardId id = metro.add_shard(label, seed + "/" + label, radio);
    metro.shard(id).net().add_router({0, 0}, w.no, kFarFuture);
    if (i > 0) metro.connect_shards(0, id);
  }
  metro.add_user(0, {40, 0}, w.make_user(seed, "u0"));
  metro.add_user(1, {60, 0}, w.make_user(seed, "u1"));
  for (std::size_t i = 0; i < metro.shard_count(); ++i)
    metro.shard(static_cast<ShardId>(i))
        .net()
        .start_beaconing(100, 500, 4000);
  metro.run_until(5000);

  // NetworkStats: field-wise uint64 sums, so the fold commutes. The size
  // check keeps this audit honest when fields are added.
  static_assert(sizeof(NetworkStats) % sizeof(std::uint64_t) == 0);
  NetworkStats fwd, rev;
  for (std::size_t i = 0; i < metro.shard_count(); ++i)
    fwd = sum(fwd, metro.shard(static_cast<ShardId>(i)).net().stats());
  for (std::size_t i = metro.shard_count(); i-- > 0;)
    rev = sum(rev, metro.shard(static_cast<ShardId>(i)).net().stats());
  EXPECT_EQ(std::memcmp(&fwd, &rev, sizeof(NetworkStats)), 0);
  EXPECT_GT(fwd.frames_transmitted, 0u);

  proto::RouterStats rf, rr;
  proto::UserStats uf, ur;
  for (std::size_t i = 0; i < metro.shard_count(); ++i) {
    const auto& net = metro.shard(static_cast<ShardId>(i)).net();
    rf = proto::sum(rf, net.router_stats_total());
    uf = proto::sum(uf, net.user_stats_total());
  }
  for (std::size_t i = metro.shard_count(); i-- > 0;) {
    const auto& net = metro.shard(static_cast<ShardId>(i)).net();
    rr = proto::sum(rr, net.router_stats_total());
    ur = proto::sum(ur, net.user_stats_total());
  }
  EXPECT_EQ(std::memcmp(&rf, &rr, sizeof(proto::RouterStats)), 0);
  EXPECT_EQ(std::memcmp(&uf, &ur, sizeof(proto::UserStats)), 0);

  // Registry snapshots built from the two folds agree bit for bit.
  auto& reg = obs::Registry::global();
  reg.reset();
  proto::absorb_router_stats(rf);
  proto::absorb_user_stats(uf);
  absorb_network_stats(fwd, metro.sim_events_total());
  const std::string snap_fwd = reg.to_json();
  reg.reset();
  proto::absorb_router_stats(rr);
  proto::absorb_user_stats(ur);
  absorb_network_stats(rev, metro.sim_events_total());
  const std::string snap_rev = reg.to_json();
  EXPECT_EQ(snap_fwd, snap_rev);

  // And the one-call aggregate publish is idempotent.
  metro.publish_metrics();
  const std::string once = reg.to_json();
  metro.publish_metrics();
  EXPECT_EQ(reg.to_json(), once);
}

}  // namespace
}  // namespace peace::mesh
