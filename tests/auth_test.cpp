// The authentication and key-agreement protocols (paper IV.B / IV.C),
// end-to-end across real entity objects: user-router M.1 -> M.2 -> M.3 and
// user-user M~.1 -> M~.2 -> M~.3, plus the rejection paths (replay, stale
// timestamps, revoked signers, rogue routers, tampered confirms).
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

class AuthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  AuthTest() : no_(crypto::Drbg::from_string("auth-no")) {
    gm_ = std::make_unique<GroupManager>(no_.register_group("G", 8, ttp_));

    auto provision = no_.provision_router(1, kFarFuture);
    router_ = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("router1"));
    router_->install_revocation_lists(no_.current_crl(), no_.current_url());

    alice_ = make_user("alice");
    bob_ = make_user("bob");
  }

  std::unique_ptr<User> make_user(const std::string& uid) {
    auto user = std::make_unique<User>(uid, no_.params(),
                                       crypto::Drbg::from_string(uid));
    user->complete_enrollment(gm_->enroll(uid, ttp_));
    return user;
  }

  /// Runs the full M.1-M.3 handshake; returns the two session endpoints.
  struct Established {
    Session user_session;
    Bytes session_id;
  };
  std::optional<Established> full_handshake(User& user, Timestamp now) {
    const BeaconMessage beacon = router_->make_beacon(now);
    auto m2 = user.process_beacon(beacon, now);
    if (!m2.has_value()) return std::nullopt;
    auto outcome = router_->handle_access_request(*m2, now + 10);
    if (!outcome.has_value()) return std::nullopt;
    auto session = user.process_access_confirm(outcome->confirm);
    if (!session.has_value()) return std::nullopt;
    return Established{std::move(*session), outcome->session_id};
  }

  static constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> gm_;
  std::unique_ptr<MeshRouter> router_;
  std::unique_ptr<User> alice_;
  std::unique_ptr<User> bob_;
};

TEST(VerifyPoolTest, BackToBackBatchesStressGenerations) {
  // Regression for the generation race: a worker that woke for batch N but
  // was descheduled before claiming an index must not invoke batch N's
  // (destroyed) body on batch N+1's indices. Thousands of tiny
  // back-to-back batches with distinct bodies make a straggler crossing a
  // batch boundary overwhelmingly likely; each body records into its own
  // batch's slots, so any cross-batch invocation corrupts a marker.
  VerifyPool pool(4);
  constexpr int kBatches = 4000;
  constexpr std::size_t kJobs = 3;
  for (int b = 0; b < kBatches; ++b) {
    std::array<int, kJobs> slots{};
    pool.run(kJobs, [&slots, b](std::size_t i) { slots[i] = b + 1; });
    for (std::size_t i = 0; i < kJobs; ++i)
      ASSERT_EQ(slots[i], b + 1) << "batch " << b << " index " << i;
  }
}

TEST(VerifyPoolTest, BodyExceptionDrainsBatchAndRethrows) {
  // A throwing body must neither terminate a worker thread nor let run()
  // unwind mid-batch: every index still executes, and the failure surfaces
  // on the calling thread once the batch has drained.
  VerifyPool pool(4);
  for (int round = 0; round < 50; ++round) {
    constexpr std::size_t kJobs = 16;
    std::array<std::atomic<bool>, kJobs> ran{};
    EXPECT_THROW(pool.run(kJobs,
                          [&ran](std::size_t i) {
                            ran[i].store(true, std::memory_order_relaxed);
                            if (i % 5 == 0) throw Error("verify failed");
                          }),
                 Error);
    for (std::size_t i = 0; i < kJobs; ++i)
      EXPECT_TRUE(ran[i].load(std::memory_order_relaxed))
          << "round " << round << " index " << i;
  }
  // The pool survives a throwing batch: the next batch runs normally.
  std::atomic<int> ok{0};
  pool.run(8, [&ok](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(VerifyPoolTest, InlineExceptionPropagates) {
  // threads <= 1 spawns no workers; the inline path throws directly.
  VerifyPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  EXPECT_THROW(pool.run(4,
                        [](std::size_t i) {
                          if (i == 2) throw Error("inline failure");
                        }),
               Error);
}

TEST_F(AuthTest, UserRouterHandshakeSucceeds) {
  auto result = full_handshake(*alice_, 1000);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(router_->stats().accepted, 1u);
  EXPECT_EQ(router_->session_count(), 1u);
  EXPECT_EQ(alice_->stats().sessions_established, 1u);
}

TEST_F(AuthTest, EstablishedSessionCarriesData) {
  auto result = full_handshake(*alice_, 1000);
  ASSERT_TRUE(result.has_value());
  Session* router_side = router_->session(result->session_id);
  ASSERT_NE(router_side, nullptr);

  // User -> router.
  DataFrame up = result->user_session.seal(as_bytes("GET /index.html"));
  auto got = router_side->open(up);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("GET /index.html"));

  // Router -> user.
  DataFrame down = router_side->seal(as_bytes("200 OK"));
  auto got2 = result->user_session.open(down);
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(*got2, to_bytes("200 OK"));
}

TEST_F(AuthTest, ReplayedAccessRequestRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  ASSERT_TRUE(router_->handle_access_request(*m2, 1010).has_value());
  EXPECT_FALSE(router_->handle_access_request(*m2, 1020).has_value());
  EXPECT_EQ(router_->stats().rejected_replay, 1u);
}

TEST_F(AuthTest, StaleTimestampRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(router_->handle_access_request(*m2, 1000 + 60000).has_value());
  EXPECT_EQ(router_->stats().rejected_stale, 1u);
}

TEST_F(AuthTest, RequestAgainstUnknownBeaconRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  // Age out the beacon by issuing many fresh ones.
  for (int i = 0; i < 10; ++i) router_->make_beacon(1100 + i);
  EXPECT_FALSE(router_->handle_access_request(*m2, 1200).has_value());
  EXPECT_EQ(router_->stats().rejected_unknown_beacon, 1u);
}

TEST_F(AuthTest, ForgedSignatureRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  m2->ts2 += 1;  // signature no longer covers the message
  EXPECT_FALSE(router_->handle_access_request(*m2, 1010).has_value());
  EXPECT_EQ(router_->stats().rejected_bad_signature, 1u);
}

TEST_F(AuthTest, RevokedUserRejectedByRouter) {
  // Revoke alice's key; router refreshes its URL; alice can no longer join.
  const auto audit_target = gm_->enroll("victim", ttp_);
  User victim("victim", no_.params(), crypto::Drbg::from_string("victim2"));
  victim.complete_enrollment(audit_target);
  no_.revoke_user_key(audit_target.index, 999);
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());

  EXPECT_FALSE(full_handshake(victim, 2000).has_value());
  EXPECT_EQ(router_->stats().rejected_revoked, 1u);
  // Other users are unaffected.
  EXPECT_TRUE(full_handshake(*alice_, 3000).has_value());
}

TEST_F(AuthTest, UserRejectsRogueRouterWithoutCertificate) {
  // A rogue router self-signs: users must refuse (phishing, Sec. V.A).
  crypto::Drbg rng = crypto::Drbg::from_string("rogue");
  auto keypair = curve::EcdsaKeyPair::generate(rng);
  RouterCertificate fake_cert;
  fake_cert.router_id = 66;
  fake_cert.public_key = keypair.public_key();
  fake_cert.expires_at = kFarFuture;
  fake_cert.signature = keypair.sign(fake_cert.signed_payload(), rng);  // !NO
  MeshRouter rogue(66, keypair, fake_cert, no_.params(),
                   crypto::Drbg::from_string("rogue-router"));
  const BeaconMessage beacon = rogue.make_beacon(1000);
  EXPECT_FALSE(alice_->process_beacon(beacon, 1000).has_value());
  EXPECT_EQ(alice_->stats().beacons_rejected, 1u);
}

TEST_F(AuthTest, UserRejectsRevokedRouter) {
  no_.revoke_router(1, 500);
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  const BeaconMessage beacon = router_->make_beacon(1000);
  EXPECT_FALSE(alice_->process_beacon(beacon, 1000).has_value());
}

TEST_F(AuthTest, UserRejectsExpiredCertificate) {
  auto provision = no_.provision_router(2, /*expires_at=*/2000);
  MeshRouter expiring(2, provision.keypair, provision.certificate,
                      no_.params(), crypto::Drbg::from_string("r2"));
  expiring.install_revocation_lists(no_.current_crl(), no_.current_url());
  const BeaconMessage beacon = expiring.make_beacon(5000);
  EXPECT_FALSE(alice_->process_beacon(beacon, 5000).has_value());
}

TEST_F(AuthTest, UserRejectsStaleBeacon) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  EXPECT_FALSE(alice_->process_beacon(beacon, 1000 + 60000).has_value());
}

TEST_F(AuthTest, UserRejectsTamperedBeacon) {
  BeaconMessage beacon = router_->make_beacon(1000);
  beacon.ts1 += 1;
  EXPECT_FALSE(alice_->process_beacon(beacon, 1001).has_value());
}

TEST_F(AuthTest, TamperedConfirmRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto outcome = router_->handle_access_request(*m2, 1010);
  ASSERT_TRUE(outcome.has_value());
  outcome->confirm.ciphertext[3] ^= 0xff;
  EXPECT_FALSE(alice_->process_access_confirm(outcome->confirm).has_value());
}

TEST_F(AuthTest, ConfirmFromWrongRouterRejected) {
  // A second legitimate router cannot hijack alice's pending handshake: the
  // confirmation is bound to the DH transcript, which it cannot complete.
  const BeaconMessage beacon = router_->make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  AccessConfirm forged;
  forged.g_rj = m2->g_rj;
  forged.g_rr = m2->g_rr;
  forged.ciphertext = Bytes(48, 0xab);
  EXPECT_FALSE(alice_->process_access_confirm(forged).has_value());
}

TEST_F(AuthTest, MultipleConcurrentSessions) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(full_handshake(*alice_, 1000 + i * 100).has_value());
    ASSERT_TRUE(full_handshake(*bob_, 1050 + i * 100).has_value());
  }
  EXPECT_EQ(router_->session_count(), 6u);
}

TEST_F(AuthTest, PooledBatchMatchesSequential) {
  // Two routers with identical keys and DRBG seeds — one verifying inline,
  // one over a 4-thread VerifyPool — must produce byte-identical outcomes
  // for the same batch: accepts, rejects, session ids, confirm ciphertexts,
  // and rejection counters.
  auto provision = no_.provision_router(5, kFarFuture);
  ProtocolConfig pooled_cfg;
  pooled_cfg.verify_threads = 4;
  MeshRouter seq(5, provision.keypair, provision.certificate, no_.params(),
                 crypto::Drbg::from_string("twin"));
  MeshRouter pooled(5, provision.keypair, provision.certificate, no_.params(),
                    crypto::Drbg::from_string("twin"), pooled_cfg);
  seq.install_revocation_lists(no_.current_crl(), no_.current_url());
  pooled.install_revocation_lists(no_.current_crl(), no_.current_url());

  // Identical DRBG streams make the beacons identical, so one set of M.2s
  // is valid against both routers.
  const BeaconMessage beacon = seq.make_beacon(1000);
  ASSERT_EQ(beacon.to_bytes(), pooled.make_beacon(1000).to_bytes());

  std::vector<AccessRequest> batch;
  std::vector<std::unique_ptr<User>> users;
  for (int i = 0; i < 4; ++i) {
    users.push_back(make_user("batch-user-" + std::to_string(i)));
    auto m2 = users.back()->process_beacon(beacon, 1000);
    ASSERT_TRUE(m2.has_value());
    batch.push_back(std::move(*m2));
  }
  batch.push_back(batch[1]);  // duplicate in the same batch: replay
  users.push_back(make_user("batch-forger"));
  auto forged_m2 = users.back()->process_beacon(beacon, 1000);
  ASSERT_TRUE(forged_m2.has_value());
  forged_m2->signature.s_x = forged_m2->signature.s_x + curve::Fr::one();
  batch.push_back(std::move(*forged_m2));

  const auto seq_out = seq.handle_access_requests(batch, 1010);
  const auto pool_out = pooled.handle_access_requests(batch, 1010);
  ASSERT_EQ(seq_out.size(), batch.size());
  ASSERT_EQ(pool_out.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(seq_out[i].has_value(), pool_out[i].has_value()) << "entry " << i;
    if (seq_out[i].has_value()) {
      EXPECT_EQ(seq_out[i]->session_id, pool_out[i]->session_id);
      EXPECT_EQ(seq_out[i]->confirm.to_bytes(), pool_out[i]->confirm.to_bytes());
    }
  }
  // First four accepted, duplicate and forged rejected.
  EXPECT_TRUE(seq_out[0].has_value() && seq_out[3].has_value());
  EXPECT_FALSE(seq_out[4].has_value());
  EXPECT_FALSE(seq_out[5].has_value());

  EXPECT_EQ(seq.stats().accepted, pooled.stats().accepted);
  EXPECT_EQ(seq.stats().rejected_replay, pooled.stats().rejected_replay);
  EXPECT_EQ(seq.stats().rejected_bad_signature,
            pooled.stats().rejected_bad_signature);
  EXPECT_EQ(seq.stats().rejected_bad_signature, 1u);
  // Randomized batch verification (on by default) runs with or without a
  // pool, so the inline router counts a batch too.
  EXPECT_EQ(seq.stats().verify_batches, 1u);
  EXPECT_GE(pooled.stats().verify_batches, 1u);
  // Five jobs entered the batch; the within-batch duplicate is deferred to
  // the sequential apply pass and never verified in parallel.
  EXPECT_EQ(pooled.stats().batched_requests, batch.size() - 1);
  EXPECT_EQ(seq.stats().batched_requests, batch.size() - 1);
}

TEST_F(AuthTest, CustomReplayWindowEnforced) {
  // A router configured with a tight 100 ms window rejects what the
  // default 5 s window would accept.
  auto provision = no_.provision_router(3, kFarFuture);
  ProtocolConfig tight;
  tight.replay_window_ms = 100;
  MeshRouter strict(3, provision.keypair, provision.certificate, no_.params(),
                    crypto::Drbg::from_string("strict"), tight);
  strict.install_revocation_lists(no_.current_crl(), no_.current_url());

  const BeaconMessage beacon = strict.make_beacon(1000);
  auto m2 = alice_->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(strict.handle_access_request(*m2, 1000 + 200).has_value());
  EXPECT_EQ(strict.stats().rejected_stale, 1u);

  auto m2b = alice_->process_beacon(strict.make_beacon(2000), 2000);
  ASSERT_TRUE(m2b.has_value());
  EXPECT_TRUE(strict.handle_access_request(*m2b, 2000 + 50).has_value());
}

TEST_F(AuthTest, BeaconHistoryDepthConfigurable) {
  auto provision = no_.provision_router(4, kFarFuture);
  ProtocolConfig shallow;
  shallow.beacon_history = 1;  // only the latest beacon is honoured
  MeshRouter forgetful(4, provision.keypair, provision.certificate,
                       no_.params(), crypto::Drbg::from_string("forgetful"),
                       shallow);
  forgetful.install_revocation_lists(no_.current_crl(), no_.current_url());

  const BeaconMessage b1 = forgetful.make_beacon(1000);
  auto m2 = alice_->process_beacon(b1, 1000);
  ASSERT_TRUE(m2.has_value());
  forgetful.make_beacon(1100);  // evicts b1's state
  EXPECT_FALSE(forgetful.handle_access_request(*m2, 1200).has_value());
  EXPECT_EQ(forgetful.stats().rejected_unknown_beacon, 1u);
}

// --- user-user protocol -------------------------------------------------------

TEST_F(AuthTest, PeerHandshakeSucceeds) {
  // Both users first learn g and the current URL from a beacon.
  const BeaconMessage beacon = router_->make_beacon(1000);
  ASSERT_TRUE(alice_->process_beacon(beacon, 1000).has_value());
  ASSERT_TRUE(bob_->process_beacon(beacon, 1000).has_value());

  const PeerHello hello = alice_->make_peer_hello(beacon.g, 1100);
  auto reply = bob_->process_peer_hello(hello, 1110);
  ASSERT_TRUE(reply.has_value());
  auto established = alice_->process_peer_reply(*reply, 1120);
  ASSERT_TRUE(established.has_value());
  auto bob_session = bob_->process_peer_confirm(established->confirm);
  ASSERT_TRUE(bob_session.has_value());

  // Relay traffic flows both ways.
  DataFrame f = established->session.seal(as_bytes("relay me"));
  auto got = bob_session->open(f);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("relay me"));
  DataFrame back = bob_session->seal(as_bytes("ack"));
  EXPECT_TRUE(established->session.open(back).has_value());
}

TEST_F(AuthTest, PeerHelloFromRevokedUserRejected) {
  const auto enrollment = gm_->enroll("mallory", ttp_);
  User mallory("mallory", no_.params(), crypto::Drbg::from_string("m"));
  mallory.complete_enrollment(enrollment);
  no_.revoke_user_key(enrollment.index, 900);

  // Bob refreshes URL from a beacon of the updated router.
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  const BeaconMessage beacon = router_->make_beacon(1000);
  ASSERT_TRUE(bob_->process_beacon(beacon, 1000).has_value());

  const PeerHello hello = mallory.make_peer_hello(beacon.g, 1100);
  EXPECT_FALSE(bob_->process_peer_hello(hello, 1110).has_value());
}

TEST_F(AuthTest, PeerStaleHelloRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  const PeerHello hello = alice_->make_peer_hello(beacon.g, 1000);
  EXPECT_FALSE(bob_->process_peer_hello(hello, 1000 + 60000).has_value());
}

TEST_F(AuthTest, PeerTamperedReplyRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  const PeerHello hello = alice_->make_peer_hello(beacon.g, 1000);
  auto reply = bob_->process_peer_hello(hello, 1010);
  ASSERT_TRUE(reply.has_value());
  reply->ts2 += 1;
  EXPECT_FALSE(alice_->process_peer_reply(*reply, 1020).has_value());
}

TEST_F(AuthTest, PeerConfirmTamperRejected) {
  const BeaconMessage beacon = router_->make_beacon(1000);
  const PeerHello hello = alice_->make_peer_hello(beacon.g, 1000);
  auto reply = bob_->process_peer_hello(hello, 1010);
  ASSERT_TRUE(reply.has_value());
  auto established = alice_->process_peer_reply(*reply, 1020);
  ASSERT_TRUE(established.has_value());
  established->confirm.ciphertext[0] ^= 1;
  EXPECT_FALSE(bob_->process_peer_confirm(established->confirm).has_value());
}

TEST_F(AuthTest, PeerReplyDelayWindowEnforced) {
  // Paper step 3: ts2 - ts1 must be within the acceptable delay window.
  const BeaconMessage beacon = router_->make_beacon(1000);
  const PeerHello hello = alice_->make_peer_hello(beacon.g, 1000);
  auto reply = bob_->process_peer_hello(hello, 1010);
  ASSERT_TRUE(reply.has_value());
  reply->ts2 = 1000 + 60000;  // breaks signature too, but window is checked
  EXPECT_FALSE(alice_->process_peer_reply(*reply, 61010).has_value());
}

TEST_F(AuthTest, MessagesRoundTripOnWire) {
  // Every protocol message survives serialize -> parse intact.
  const BeaconMessage beacon = router_->make_beacon(1000);
  const BeaconMessage beacon2 =
      BeaconMessage::from_bytes(beacon.to_bytes());
  EXPECT_EQ(beacon2.to_bytes(), beacon.to_bytes());
  auto m2 = alice_->process_beacon(beacon2, 1000);
  ASSERT_TRUE(m2.has_value());
  const AccessRequest m2_wire = AccessRequest::from_bytes(m2->to_bytes());
  EXPECT_EQ(m2_wire.to_bytes(), m2->to_bytes());
  auto outcome = router_->handle_access_request(m2_wire, 1010);
  ASSERT_TRUE(outcome.has_value());
  const AccessConfirm m3 = AccessConfirm::from_bytes(outcome->confirm.to_bytes());
  EXPECT_TRUE(alice_->process_access_confirm(m3).has_value());
}

}  // namespace
}  // namespace peace::proto
