// Reproducibility: the whole stack is seeded through Drbg, so identical
// seeds must produce bit-identical protocol runs and simulation outcomes —
// the property that makes experiments in bench/ and EXPERIMENTS.md
// repeatable.
#include <gtest/gtest.h>

#include "mesh/network.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

struct RunResult {
  std::size_t connected = 0;
  std::uint64_t frames = 0;
  std::uint64_t events = 0;
  Bytes first_m2;
};

RunResult run_scenario(const std::string& seed,
                       obs::HealthMonitor* monitor = nullptr) {
  proto::NetworkOperator no(crypto::Drbg::from_string(seed + "-no"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm = no.register_group("G", 8, ttp);

  Simulator sim;
  MeshNetwork net(sim, crypto::Drbg::from_string(seed + "-net"),
                  RadioConfig{.router_range = 250, .user_range = 80, .loss_probability = 0.2, .latency_ms = 2});
  net.add_router({0, 0}, no, kFarFuture);
  for (int i = 0; i < 4; ++i) {
    auto user = std::make_unique<proto::User>(
        std::string("u") + std::to_string(i), no.params(),
        crypto::Drbg::from_string(seed + std::string("-u") + std::to_string(i)));
    user->complete_enrollment(gm.enroll(std::string("u") + std::to_string(i), ttp));
    net.add_user({30.0 * (i + 1), 0}, std::move(user));
  }

  RunResult result;
  net.add_tap([&result](const WireObservation& obs) {
    if (result.first_m2.empty() && std::string(obs.kind) == "m2")
      result.first_m2 = obs.payload;
  });
  net.start_beaconing(100, 500, 3000);
  if (monitor != nullptr) {
    // Armed anomaly detection: drain + ingest + evaluate every 500 ms, the
    // way the metro barrier loop drives it. Chunked run_until is
    // bit-identical to one call, and the monitor is a pure consumer of
    // drained events — so arming it must change nothing.
    for (SimTime t = 500; t <= 5000; t += 500) {
      sim.run_until(t);
      std::vector<obs::SecEvent> drained;
      obs::drain_sec_events(&drained);
      for (const obs::SecEvent& e : drained) monitor->ingest(e);
      monitor->tick(t);
    }
  } else {
    sim.run_until(5000);
  }
  for (const NodeId id : net.user_ids())
    if (net.is_connected(id)) ++result.connected;
  result.frames = net.stats().frames_transmitted;
  result.events = sim.events_processed();
  return result;
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

TEST_F(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  const RunResult a = run_scenario("det-seed-1");
  const RunResult b = run_scenario("det-seed-1");
  EXPECT_EQ(a.connected, b.connected);
  EXPECT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.events, b.events);
  // Byte-identical wire traffic, down to every nonce.
  EXPECT_EQ(a.first_m2, b.first_m2);
  EXPECT_FALSE(a.first_m2.empty());
}

TEST_F(DeterminismTest, DifferentSeedsDiverge) {
  const RunResult a = run_scenario("det-seed-1");
  const RunResult b = run_scenario("det-seed-2");
  // Same topology => same macro outcome, but all randomness differs.
  EXPECT_NE(a.first_m2, b.first_m2);
}

TEST_F(DeterminismTest, TelemetryIsNeutral) {
  // The observability layer is a pure observer: turning span tracing on
  // must change neither wire bytes nor any simulation outcome. (Under
  // PEACE_OBS=OFF obs::enable is a no-op and this degenerates to the
  // identical-seeds test — still a valid assertion.)
  const RunResult off = run_scenario("det-obs-seed");
  obs::enable(true);
  const RunResult on = run_scenario("det-obs-seed");
  // Same run again with a HealthMonitor armed: the security-event stream
  // drains into live windowed detectors between simulation chunks. Still
  // an observer — every deterministic outcome must stay bit-identical.
  obs::HealthMonitor monitor;
  const RunResult armed = run_scenario("det-obs-seed", &monitor);
  obs::enable(false);
  obs::Tracer::global().clear();
  EXPECT_EQ(off.connected, on.connected);
  EXPECT_EQ(off.frames, on.frames);
  EXPECT_EQ(off.events, on.events);
  // Byte-identical traffic: telemetry drew no DRBG randomness and touched
  // no protocol state.
  EXPECT_EQ(off.first_m2, on.first_m2);
  EXPECT_FALSE(off.first_m2.empty());
  EXPECT_EQ(off.connected, armed.connected);
  EXPECT_EQ(off.frames, armed.frames);
  EXPECT_EQ(off.events, armed.events);
  EXPECT_EQ(off.first_m2, armed.first_m2);
}

TEST_F(DeterminismTest, GroupSignatureDeterministicGivenRng) {
  crypto::Drbg rng1 = crypto::Drbg::from_string("det-sig");
  crypto::Drbg rng2 = crypto::Drbg::from_string("det-sig");
  const auto issuer = groupsig::Issuer::create(rng1);
  const auto issuer2 = groupsig::Issuer::create(rng2);
  EXPECT_TRUE(issuer.gpk() == issuer2.gpk());
  const auto grp1 = issuer.new_group_secret(rng1);
  const auto grp2 = issuer2.new_group_secret(rng2);
  const auto key1 = issuer.issue(grp1, rng1);
  const auto key2 = issuer2.issue(grp2, rng2);
  const auto sig1 = groupsig::sign(issuer.gpk(), key1, as_bytes("m"), rng1);
  const auto sig2 = groupsig::sign(issuer2.gpk(), key2, as_bytes("m"), rng2);
  EXPECT_EQ(sig1.to_bytes(), sig2.to_bytes());
}

}  // namespace
}  // namespace peace::mesh
