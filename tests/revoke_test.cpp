// The revocation distribution subsystem: versioned delta lists (serde,
// chain validation, anti-rollback), differential bit-identity between
// delta-applied and full-list state, the incremental epoch index, and the
// RCU snapshot sharing between routers and VerifyPool readers.
#include <gtest/gtest.h>

#include <thread>

#include "mesh/network.hpp"
#include "peace/revoke/shared.hpp"
#include "peace/revoke/store.hpp"
#include "peace/router.hpp"

namespace peace::revoke {
namespace {

using proto::GroupManager;
using proto::KeyIndex;
using proto::MeshRouter;
using proto::NetworkOperator;
using proto::RLDeltaAnnounce;
using proto::RLResyncRequest;
using proto::RLResyncResponse;
using proto::Timestamp;
using proto::TrustedThirdParty;

constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

/// A miniature NO for store-level tests: signs full lists and chains deltas
/// with its own key, so tests can hand-craft duplicate, stale, and forged
/// inputs the real NetworkOperator refuses to produce.
struct ListAuthority {
  explicit ListAuthority(const std::string& seed = "list-authority")
      : rng(crypto::Drbg::from_string(seed)),
        key(curve::EcdsaKeyPair::generate(rng)) {}

  crypto::Drbg rng;
  curve::EcdsaKeyPair key;

  SignedRevocationList sign_full(std::vector<Bytes> entries,
                                 std::uint64_t version, Timestamp now) {
    SignedRevocationList list;
    list.version = version;
    list.issued_at = now;
    list.entries = std::move(entries);
    list.signature = key.sign(list.signed_payload(), rng);
    return list;
  }

  RLDelta delta(ListKind kind, const SignedRevocationList& prev,
                const SignedRevocationList& next, std::vector<Bytes> removed,
                std::vector<Bytes> added) {
    RLDelta d;
    d.kind = kind;
    d.base_version = prev.version;
    d.version = next.version;
    d.issued_at = next.issued_at;
    d.base_hash = list_state_hash(prev);
    d.removed = std::move(removed);
    d.added = std::move(added);
    d.full_signature = next.signature;
    d.signature = key.sign(d.signed_payload(), rng);
    return d;
  }
};

Bytes entry_bytes(char c) { return Bytes{static_cast<std::uint8_t>(c)}; }

class RevokeStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  RevokeStoreTest() : store_(ListKind::kUrl, auth_.key.public_key()) {
    // Chain: v1 = {a}, v2 = {a, b}, v3 = {b, c} (a removed, c added).
    full_[0] = auth_.sign_full({}, 0, 0);
    full_[1] = auth_.sign_full({entry_bytes('a')}, 1, 10);
    full_[2] = auth_.sign_full({entry_bytes('a'), entry_bytes('b')}, 2, 20);
    full_[3] = auth_.sign_full({entry_bytes('b'), entry_bytes('c')}, 3, 30);
    delta_[1] = auth_.delta(ListKind::kUrl, full_[0], full_[1], {},
                            {entry_bytes('a')});
    delta_[2] = auth_.delta(ListKind::kUrl, full_[1], full_[2], {},
                            {entry_bytes('b')});
    delta_[3] = auth_.delta(ListKind::kUrl, full_[2], full_[3],
                            {entry_bytes('a')}, {entry_bytes('c')});
  }

  ListAuthority auth_;
  RevocationStore store_;
  SignedRevocationList full_[4];
  RLDelta delta_[4];
};

TEST_F(RevokeStoreTest, SerdeRoundTripsAndValidates) {
  const Bytes wire = delta_[3].to_bytes();
  const RLDelta back = RLDelta::from_bytes(wire);
  EXPECT_EQ(back.to_bytes(), wire);
  EXPECT_EQ(back.version, 3u);
  EXPECT_EQ(back.base_version, 2u);
  EXPECT_EQ(back.removed.size(), 1u);
  EXPECT_EQ(back.added.size(), 1u);

  const RLDeltaAnnounce ann{{delta_[1], delta_[2], delta_[3]}};
  EXPECT_EQ(RLDeltaAnnounce::from_bytes(ann.to_bytes()).deltas.size(), 3u);
  const RLResyncRequest req{ListKind::kCrl, 7};
  const RLResyncRequest req2 = RLResyncRequest::from_bytes(req.to_bytes());
  EXPECT_EQ(req2.kind, ListKind::kCrl);
  EXPECT_EQ(req2.have_version, 7u);
  const RLResyncResponse resp{ListKind::kUrl, full_[2]};
  EXPECT_EQ(RLResyncResponse::from_bytes(resp.to_bytes()).full.to_bytes(),
            full_[2].to_bytes());

  // Unknown list kind.
  Bytes bad_kind = wire;
  bad_kind[0] = 9;
  EXPECT_THROW(RLDelta::from_bytes(bad_kind), Error);
  // Truncation and trailing garbage.
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW(RLDelta::from_bytes(truncated), Error);
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(RLDelta::from_bytes(trailing), Error);
  // A delta whose version does not advance is rejected at decode time.
  RLDelta non_inc = delta_[1];
  non_inc.base_version = non_inc.version = 5;
  EXPECT_THROW(RLDelta::from_bytes(non_inc.to_bytes()), Error);
}

TEST_F(RevokeStoreTest, DeltaChainReconstructsFullListsBitForBit) {
  for (int v = 1; v <= 3; ++v) {
    ASSERT_EQ(store_.apply_delta(delta_[v]), DeltaResult::kApplied) << v;
    EXPECT_EQ(store_.version(), static_cast<std::uint64_t>(v));
    // The acceptance criterion: delta-applied state is byte-identical to
    // the authority's own full list at the same version.
    EXPECT_EQ(store_.list().to_bytes(), full_[v].to_bytes()) << v;
    EXPECT_EQ(store_.state_hash(), list_state_hash(full_[v])) << v;
  }
}

TEST_F(RevokeStoreTest, DuplicateEntriesInDeltaAreIdempotent) {
  ASSERT_EQ(store_.apply_delta(delta_[1]), DeltaResult::kApplied);
  // 'b' added twice, 'x' removed though never present: the edit still
  // lands exactly on the v2 list, so the chain continues unbroken.
  const RLDelta dup = auth_.delta(ListKind::kUrl, full_[1], full_[2],
                                  {entry_bytes('x')},
                                  {entry_bytes('b'), entry_bytes('b')});
  ASSERT_EQ(store_.apply_delta(dup), DeltaResult::kApplied);
  EXPECT_EQ(store_.list().to_bytes(), full_[2].to_bytes());
  ASSERT_EQ(store_.apply_delta(delta_[3]), DeltaResult::kApplied);
  EXPECT_EQ(store_.list().to_bytes(), full_[3].to_bytes());
}

TEST_F(RevokeStoreTest, RollbackForgeryAndGapsRejectedWithoutMutation) {
  ASSERT_EQ(store_.apply_delta(delta_[1]), DeltaResult::kApplied);
  ASSERT_EQ(store_.apply_delta(delta_[2]), DeltaResult::kApplied);
  const Bytes before = store_.list().to_bytes();

  // Anti-rollback: re-delivery and older deltas are ignored.
  EXPECT_EQ(store_.apply_delta(delta_[1]), DeltaResult::kStale);
  EXPECT_EQ(store_.apply_delta(delta_[2]), DeltaResult::kStale);
  // An attacker replaying an old *full list* cannot roll the store back.
  EXPECT_EQ(store_.install_full(full_[1]),
            RevocationStore::InstallResult::kStale);

  // Forgery: valid-looking delta signed by the wrong key.
  ListAuthority mallory("mallory");
  const RLDelta forged = mallory.delta(ListKind::kUrl, full_[2], full_[3],
                                       {entry_bytes('a')}, {entry_bytes('c')});
  EXPECT_EQ(store_.apply_delta(forged), DeltaResult::kBadSignature);
  // Tampered content (signature no longer covers it) is also a bad signature.
  RLDelta tampered = delta_[3];
  tampered.added.push_back(entry_bytes('z'));
  EXPECT_EQ(store_.apply_delta(tampered), DeltaResult::kBadSignature);

  // Broken chain: right versions, wrong predecessor hash.
  RLDelta wrong_base = delta_[3];
  wrong_base.base_hash = list_state_hash(full_[1]);
  wrong_base.signature = auth_.key.sign(wrong_base.signed_payload(), auth_.rng);
  EXPECT_EQ(store_.apply_delta(wrong_base), DeltaResult::kBadChain);

  // A delta that lies about its effect: chain fields are honest but the
  // resulting list does not verify under full_signature.
  RLDelta lying = auth_.delta(ListKind::kUrl, full_[2], full_[3], {},
                              {entry_bytes('q')});
  EXPECT_EQ(store_.apply_delta(lying), DeltaResult::kBadChain);

  // Wrong list kind.
  const RLDelta crl_delta = auth_.delta(ListKind::kCrl, full_[2], full_[3],
                                        {entry_bytes('a')}, {entry_bytes('c')});
  EXPECT_EQ(store_.apply_delta(crl_delta), DeltaResult::kWrongKind);

  // None of the rejected inputs moved the store.
  EXPECT_EQ(store_.version(), 2u);
  EXPECT_EQ(store_.list().to_bytes(), before);
}

TEST_F(RevokeStoreTest, GapFallsBackToResyncAndRecovers) {
  ASSERT_EQ(store_.apply_delta(delta_[1]), DeltaResult::kApplied);
  // delta 2 is lost; delta 3 arrives — a gap, and the store is untouched.
  EXPECT_EQ(store_.apply_delta(delta_[3]), DeltaResult::kGap);
  EXPECT_TRUE(needs_resync(DeltaResult::kGap));
  EXPECT_EQ(store_.list().to_bytes(), full_[1].to_bytes());
  // Resync with the authority's full list; the chain then continues as if
  // nothing was ever lost.
  EXPECT_EQ(store_.install_full(full_[2]),
            RevocationStore::InstallResult::kInstalled);
  EXPECT_EQ(store_.apply_delta(delta_[3]), DeltaResult::kApplied);
  EXPECT_EQ(store_.list().to_bytes(), full_[3].to_bytes());

  // Out-of-order *within* the recovered region stays stale, not a gap.
  EXPECT_EQ(store_.apply_delta(delta_[2]), DeltaResult::kStale);
}

/// Full-stack fixture: a real NetworkOperator emitting deltas, real routers
/// and users.
class RevokeSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  RevokeSystemTest()
      : no_(crypto::Drbg::from_string("rv-no")),
        gm_(no_.register_group("metro", 16, ttp_)) {}

  std::unique_ptr<MeshRouter> make_router(proto::RouterId id) {
    auto p = no_.provision_router(id, kFarFuture);
    auto r = std::make_unique<MeshRouter>(
        id, p.keypair, p.certificate, no_.params(),
        crypto::Drbg::from_string("rv-router-" + std::to_string(id)));
    r->install_revocation_lists(no_.current_crl(), no_.current_url());
    return r;
  }

  std::unique_ptr<proto::User> make_user(const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no_.params(), crypto::Drbg::from_string("rv-" + uid));
    enrollments_[uid] = gm_.enroll(uid, ttp_);
    user->complete_enrollment(enrollments_[uid]);
    return user;
  }

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  GroupManager gm_;
  std::unordered_map<std::string, GroupManager::Enrollment> enrollments_;
};

TEST_F(RevokeSystemTest, OperatorDeltasTrackEveryMutationBitForBit) {
  make_user("u1");
  make_user("u2");
  RevocationStore url_store(ListKind::kUrl, no_.npk());
  RevocationStore crl_store(ListKind::kCrl, no_.npk());

  no_.revoke_user_key(enrollments_["u1"].index, 100);
  no_.revoke_router(7, 110);
  no_.revoke_user_key(enrollments_["u2"].index, 120);
  // Re-revoking is a no-op: the chain stays duplicate-free.
  no_.revoke_user_key(enrollments_["u1"].index, 125);
  no_.rotate_master_key(130);  // URL resets for the new era, via a delta

  for (const RLDelta& d : no_.deltas_since(ListKind::kUrl, 0))
    ASSERT_EQ(url_store.apply_delta(d), DeltaResult::kApplied);
  for (const RLDelta& d : no_.deltas_since(ListKind::kCrl, 0))
    ASSERT_EQ(crl_store.apply_delta(d), DeltaResult::kApplied);

  EXPECT_EQ(url_store.list().to_bytes(), no_.current_url().to_bytes());
  EXPECT_EQ(crl_store.list().to_bytes(), no_.current_crl().to_bytes());
  EXPECT_TRUE(url_store.list().entries.empty());  // post-rotation era
  EXPECT_EQ(url_store.version(), 3u);  // 2 user revocations + the rotation
}

TEST_F(RevokeSystemTest, RouterAppliesAnnouncementsAndResyncsAcrossGaps) {
  make_user("u1");
  make_user("u2");
  make_user("u3");
  auto fresh = make_router(1);   // hears every announcement
  auto lossy = make_router(2);   // misses the first two

  no_.revoke_user_key(enrollments_["u1"].index, 100);
  no_.revoke_user_key(enrollments_["u2"].index, 110);
  const RLDeltaAnnounce first = no_.make_delta_announcement(0, 0);
  EXPECT_TRUE(fresh->handle_rl_announce(first).empty());
  EXPECT_EQ(fresh->stats().rl_deltas_applied, 2u);
  EXPECT_EQ(fresh->revocation()->url_version(), 2u);

  no_.revoke_user_key(enrollments_["u3"].index, 120);
  const RLDeltaAnnounce third = no_.make_delta_announcement(0, 2);
  EXPECT_TRUE(fresh->handle_rl_announce(third).empty());
  EXPECT_EQ(fresh->revocation()->url_version(), 3u);

  // The lossy router sees only the third delta: gap -> resync round-trip.
  const auto requests = lossy->handle_rl_announce(third);
  ASSERT_EQ(requests.size(), 1u);
  EXPECT_EQ(requests[0].kind, ListKind::kUrl);
  EXPECT_EQ(requests[0].have_version, 0u);
  EXPECT_EQ(lossy->stats().rl_resyncs_requested, 1u);
  lossy->handle_rl_resync(no_.handle_resync(requests[0]));
  EXPECT_EQ(lossy->stats().rl_resyncs_completed, 1u);
  EXPECT_EQ(lossy->revocation()->url_version(), 3u);
  EXPECT_EQ(lossy->revocation()->snapshot()->url.to_bytes(),
            no_.current_url().to_bytes());

  // Duplicate re-delivery after the resync is ignored, not a new gap.
  EXPECT_TRUE(lossy->handle_rl_announce(third).empty());
  EXPECT_EQ(lossy->stats().rl_deltas_ignored, 1u);

  // An announcement carrying the whole back-log heals a gap by itself: a
  // router that saw nothing applies all three in order, no resync needed.
  auto late = make_router(3);
  EXPECT_TRUE(late->handle_rl_announce(no_.make_delta_announcement(0, 0))
                  .empty());
  EXPECT_EQ(late->revocation()->url_version(), 3u);

  // A forged delta neither applies nor triggers a resync request.
  ListAuthority mallory("mallory");
  RLDelta forged = third.deltas.back();
  forged.signature = mallory.key.sign(forged.signed_payload(), mallory.rng);
  forged.version = 9;
  EXPECT_TRUE(fresh->handle_rl_announce(RLDeltaAnnounce{{forged}}).empty());
  EXPECT_EQ(fresh->stats().rl_deltas_rejected, 1u);
  EXPECT_EQ(fresh->revocation()->url_version(), 3u);
}

TEST_F(RevokeSystemTest, DeltaRevokedUserRejectedSameAsFullInstall) {
  // Differential: one router learns revocations via deltas, the other via
  // the classic full-list install; both must reject identically, and their
  // snapshots must hold byte-identical lists.
  auto via_delta = make_router(1);
  auto via_full = make_router(2);
  auto mallory = make_user("mallory");

  no_.revoke_user_key(enrollments_["mallory"].index, 100);
  EXPECT_TRUE(
      via_delta->handle_rl_announce(no_.make_delta_announcement(0, 0))
          .empty());
  via_full->install_revocation_lists(no_.current_crl(), no_.current_url());
  EXPECT_EQ(via_delta->revocation()->snapshot()->url.to_bytes(),
            via_full->revocation()->snapshot()->url.to_bytes());

  for (MeshRouter* r : {via_delta.get(), via_full.get()}) {
    const auto beacon = r->make_beacon(1000);
    auto m2 = mallory->process_beacon(beacon, 1000);
    ASSERT_TRUE(m2.has_value());
    EXPECT_FALSE(r->handle_access_request(*m2, 1001).has_value());
    EXPECT_EQ(r->stats().rejected_revoked, 1u);
  }
}

TEST_F(RevokeSystemTest, UrlScanPreparesBasesOncePerMessage) {
  auto router = make_router(1);
  auto alice = make_user("alice");
  for (const char* uid : {"r1", "r2", "r3"}) {
    make_user(uid);
    no_.revoke_user_key(enrollments_[uid].index, 100);
  }
  router->install_revocation_lists(no_.current_crl(), no_.current_url());

  const auto beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  // The 3-token URL scan derives the bases (and prepares v_hat) exactly
  // once for the message; matches_token never builds its own G2Prepared.
  const std::uint64_t before = curve::g2_prepared_count();
  ASSERT_TRUE(router->handle_access_request(*m2, 1001).has_value());
  EXPECT_EQ(curve::g2_prepared_count() - before, 1u);
}

TEST_F(RevokeSystemTest, EpochIndexIsIncrementalAcrossDeltas) {
  auto router = make_router(1);
  for (const char* uid : {"a", "b", "c", "d"}) make_user(uid);
  for (const char* uid : {"a", "b", "c"})
    no_.revoke_user_key(enrollments_[uid].index, 100);
  router->install_revocation_lists(no_.current_crl(), no_.current_url());

  auto& shared = *router->revocation();
  router->set_revocation_epoch(5);
  ASSERT_NE(shared.snapshot()->index, nullptr);
  EXPECT_EQ(shared.snapshot()->index->size(), 3u);

  // Applying a one-token delta re-tags exactly that token: one pairing,
  // not a |URL|+1 rebuild.
  no_.revoke_user_key(enrollments_["d"].index, 200);
  const auto ann = no_.make_delta_announcement(0, 3);
  const std::uint64_t pairings_before = curve::pairing_op_count();
  EXPECT_TRUE(router->handle_rl_announce(ann).empty());
  const std::uint64_t incremental = curve::pairing_op_count() - pairings_before;
  EXPECT_EQ(incremental, 1u);
  EXPECT_EQ(shared.snapshot()->index->size(), 4u);

  // Baseline: building the same index from scratch costs one pairing per
  // token — the delta path is measurably cheaper.
  const std::uint64_t rebuild_before = curve::pairing_op_count();
  const groupsig::EpochRevocationIndex rebuilt(
      no_.params().gpk, 5, shared.snapshot()->url_tokens);
  const std::uint64_t rebuild = curve::pairing_op_count() - rebuild_before;
  EXPECT_EQ(rebuild, 4u);
  EXPECT_LT(incremental, rebuild);
}

TEST_F(RevokeSystemTest, EpochModeIsRevokedBuildsNoPrepared) {
  auto router = make_router(1);
  auto alice = make_user("alice");
  auto mallory = make_user("mallory");
  no_.revoke_user_key(enrollments_["mallory"].index, 100);
  router->install_revocation_lists(no_.current_crl(), no_.current_url());
  router->set_revocation_epoch(9);

  const auto& index = *router->revocation()->snapshot()->index;
  const auto sign_epoch = [&](const std::string& uid, proto::User& u) {
    crypto::Drbg rng = crypto::Drbg::from_string("esig-" + uid);
    return groupsig::sign(no_.params().gpk,
                          u.credential(enrollments_[uid].index.group),
                          as_bytes("m"), rng, 9);
  };
  const groupsig::Signature ok = sign_epoch("alice", *alice);
  const groupsig::Signature bad = sign_epoch("mallory", *mallory);

  // The per-epoch v_hat was prepared when the index was built; O(1)
  // lookups afterwards construct no line tables at all.
  const std::uint64_t before = curve::g2_prepared_count();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(index.is_revoked(ok));
    EXPECT_TRUE(index.is_revoked(bad));
  }
  EXPECT_EQ(curve::g2_prepared_count() - before, 0u);
}

TEST_F(RevokeSystemTest, EpochRollEdgeCases) {
  auto router = make_router(1);
  auto mallory = make_user("mallory");
  auto& shared = *router->revocation();

  // Empty-URL epoch: the index exists, answers, and costs no pairings to
  // roll (there is nothing to re-tag).
  router->set_revocation_epoch(3);
  ASSERT_NE(shared.snapshot()->index, nullptr);
  EXPECT_EQ(shared.snapshot()->index->size(), 0u);
  const std::uint64_t before = curve::pairing_op_count();
  router->set_revocation_epoch(4);
  EXPECT_EQ(curve::pairing_op_count() - before, 0u);

  // Revoke-then-roll: the member revoked in epoch 4 stays revoked after
  // the roll to epoch 5 — tags are re-derived, not dropped.
  no_.revoke_user_key(enrollments_["mallory"].index, 100);
  EXPECT_TRUE(router->handle_rl_announce(no_.make_delta_announcement(0, 0))
                  .empty());
  const auto sign_epoch = [&](groupsig::Epoch epoch) {
    crypto::Drbg rng = crypto::Drbg::from_string("roll-sig");
    return groupsig::sign(no_.params().gpk,
                          mallory->credential(
                              enrollments_["mallory"].index.group),
                          as_bytes("m"), rng, epoch);
  };
  EXPECT_TRUE(shared.snapshot()->index->is_revoked(sign_epoch(4)));
  router->set_revocation_epoch(5);
  EXPECT_TRUE(shared.snapshot()->index->is_revoked(sign_epoch(5)));
  // Rolling to the same epoch is a no-op (same snapshot stays published).
  const auto snap = shared.snapshot();
  router->set_revocation_epoch(5);
  EXPECT_EQ(shared.snapshot(), snap);
  // Dropping back to epoch 0 removes the index; the URL scan still rejects.
  router->set_revocation_epoch(0);
  EXPECT_EQ(shared.snapshot()->index, nullptr);
  const auto beacon = router->make_beacon(1000);
  auto m2 = mallory->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  EXPECT_FALSE(router->handle_access_request(*m2, 1001).has_value());
  EXPECT_EQ(router->stats().rejected_revoked, 1u);
}

TEST_F(RevokeSystemTest, EpochRollRaceFallsBackToSharedPreparedScan) {
  // Requests signed while epoch 4 was live race a roll to epoch 5: by the
  // time the router handles them, the snapshot index answers only epoch 5.
  // The mismatch must fall back to the prepared-bases URL scan (not throw,
  // not misclassify against the wrong epoch's tags) — and since epoch-mode
  // bases depend only on (gpk, epoch), the whole batch shares ONE base
  // derivation.
  auto router = make_router(1);
  auto alice = make_user("alice");
  auto mallory = make_user("mallory");
  no_.revoke_user_key(enrollments_["mallory"].index, 100);
  router->install_revocation_lists(no_.current_crl(), no_.current_url());
  router->set_revocation_epoch(4);

  const auto beacon = router->make_beacon(1000);
  const auto epoch_m2 = [&](proto::User& u, const std::string& uid) {
    auto m2 = u.process_beacon(beacon, 1000);
    EXPECT_TRUE(m2.has_value());
    crypto::Drbg rng = crypto::Drbg::from_string("race-" + uid);
    m2->signature =
        groupsig::sign(no_.params().gpk,
                       u.credential(enrollments_[uid].index.group),
                       m2->signed_payload(), rng, 4);
    return *m2;
  };
  const std::vector<proto::AccessRequest> batch{epoch_m2(*alice, "alice"),
                                                epoch_m2(*mallory, "mallory")};

  router->set_revocation_epoch(5);  // the roll lands before the batch
  const std::uint64_t before = curve::g2_prepared_count();
  const auto outcomes = router->handle_access_requests(batch, 1001);
  EXPECT_EQ(curve::g2_prepared_count() - before, 1u);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].has_value());
  EXPECT_FALSE(outcomes[1].has_value());
  EXPECT_EQ(router->stats().rejected_revoked, 1u);

  // Steady state is untouched by the race handling: a current-epoch request
  // still answers from the O(1) index with no new base derivations.
  auto live = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(live.has_value());
  crypto::Drbg rng = crypto::Drbg::from_string("race-live");
  live->signature = groupsig::sign(
      no_.params().gpk, alice->credential(enrollments_["alice"].index.group),
      live->signed_payload(), rng, 5);
  const std::uint64_t steady = curve::g2_prepared_count();
  EXPECT_TRUE(router->handle_access_request(*live, 1001).has_value());
  EXPECT_EQ(curve::g2_prepared_count() - steady, 0u);
}

TEST_F(RevokeSystemTest, SnapshotSwapIsSafeUnderConcurrentReaders) {
  // RCU discipline under instrumentation (run in the ASan/UBSan CI job):
  // a VerifyPool's worth of readers hammer snapshot() — touching the token
  // vector, the lists, and the epoch index — while this thread publishes a
  // stream of deltas, full installs, and epoch rolls. Readers must always
  // observe an internally consistent snapshot (version == entry count in
  // this test's construction) and never a torn one.
  for (int i = 0; i < 8; ++i) make_user("u" + std::to_string(i));
  auto router = make_router(1);
  auto& shared = *router->revocation();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  proto::VerifyPool pool(4);
  std::jthread writer([&] {
    for (int i = 0; i < 8; ++i) {
      no_.revoke_user_key(enrollments_["u" + std::to_string(i)].index,
                          100 + i);
      router->handle_rl_announce(
          no_.make_delta_announcement(0, shared.url_version()));
      if (i == 3) router->set_revocation_epoch(2);
      if (i == 5) router->set_revocation_epoch(3);
      if (i == 6)  // full-install path concurrently with readers
        shared.install_full(no_.current_crl(), no_.current_url());
    }
    stop.store(true);
  });
  pool.run(4, [&](std::size_t) {
    while (!stop.load()) {
      const auto snap = shared.snapshot();
      ASSERT_EQ(snap->url.entries.size(), snap->url_tokens.size());
      ASSERT_EQ(snap->url.version, snap->url_tokens.size());
      if (snap->index != nullptr) {
        ASSERT_EQ(snap->index->size(), snap->url_tokens.size());
      }
      reads.fetch_add(1);
    }
  });
  writer.join();
  EXPECT_EQ(shared.snapshot()->url_tokens.size(), 8u);
  EXPECT_GT(reads.load(), 0u);
}

TEST_F(RevokeSystemTest, MeshRoutersShareOneSnapshotState) {
  mesh::Simulator sim;
  mesh::MeshNetwork net(sim, crypto::Drbg::from_string("rv-mesh"));
  const auto r1 = net.add_router({0, 0}, no_, kFarFuture);
  const auto r2 = net.add_router({300, 0}, no_, kFarFuture);
  // One shared state: same object, and N routers see one snapshot.
  EXPECT_EQ(net.router(r1).revocation().get(),
            net.router(r2).revocation().get());
  EXPECT_EQ(net.revocation().get(), net.router(r1).revocation().get());

  auto mallory = make_user("mallory");
  no_.revoke_user_key(enrollments_["mallory"].index, 100);
  net.announce_rl_deltas(no_.make_delta_announcement(0, 0), no_);
  sim.run_until(10'000);

  EXPECT_EQ(net.revocation()->url_version(), 1u);
  for (const auto rid : {r1, r2}) {
    const auto beacon = net.router(rid).make_beacon(20'000);
    auto m2 = mallory->process_beacon(beacon, 20'000);
    ASSERT_TRUE(m2.has_value());
    EXPECT_FALSE(net.router(rid).handle_access_request(*m2, 20'001)
                     .has_value());
  }
  EXPECT_EQ(net.router(r1).stats().rejected_revoked +
                net.router(r2).stats().rejected_revoked,
            2u);
}

TEST_F(RevokeSystemTest, MeshDroppedAnnouncementHealsViaResync) {
  mesh::Simulator sim;
  mesh::MeshNetwork net(sim, crypto::Drbg::from_string("rv-mesh2"));
  const auto r1 = net.add_router({0, 0}, no_, kFarFuture);
  make_user("u1");
  make_user("u2");

  // The first announcement never reaches the segment (radio loss); the
  // second arrives, exposes the gap, and the resync round-trip heals it.
  no_.revoke_user_key(enrollments_["u1"].index, 100);
  no_.revoke_user_key(enrollments_["u2"].index, 200);
  net.announce_rl_deltas(no_.make_delta_announcement(0, 1), no_);
  sim.run_until(10'000);

  EXPECT_EQ(net.router(r1).stats().rl_resyncs_requested, 1u);
  EXPECT_EQ(net.router(r1).stats().rl_resyncs_completed, 1u);
  EXPECT_EQ(net.revocation()->url_version(), 2u);
  EXPECT_EQ(net.revocation()->snapshot()->url.to_bytes(),
            no_.current_url().to_bytes());
}

}  // namespace
}  // namespace peace::revoke
