// Windowed shard health and online anomaly detection
// (docs/OBSERVABILITY.md §4.2–§4.3): WindowStats bucket/EWMA semantics and
// order-independent merging, HealthMonitor detector arms / cooldown /
// alert-log bounds, and the end-to-end regression: a seeded metro day with
// a forgery burst and a revoked mole must raise alerts naming the right
// shard and event kind.
#include "obs/health.hpp"

#include <gtest/gtest.h>

#include "mesh/metro_scenario.hpp"
#include "obs/trace.hpp"

namespace peace::obs {
namespace {

SecEvent ev(SecEventKind kind, std::uint32_t shard, std::uint64_t sim_ms) {
  SecEvent e;
  e.kind = kind;
  e.shard = shard;
  e.sim_ms = sim_ms;
  return e;
}

WindowOptions small_window() {
  WindowOptions w;
  w.bucket_ms = 1'000;
  w.buckets = 4;
  w.ewma_alpha = 0.5;
  return w;
}

TEST(WindowStatsTest, WindowCountAndRate) {
  WindowStats w(small_window());
  w.add(1, SecEventKind::kAuthReject, 100);
  w.add(1, SecEventKind::kAuthReject, 900, 2);
  w.add(1, SecEventKind::kAuthReject, 2'500);
  w.add(2, SecEventKind::kReplayDetected, 2'500);
  EXPECT_EQ(w.window_count(1, SecEventKind::kAuthReject), 4u);
  EXPECT_EQ(w.window_count(1, SecEventKind::kReplayDetected), 0u);
  EXPECT_EQ(w.window_count(2, SecEventKind::kReplayDetected), 1u);
  EXPECT_EQ(w.window_count(3, SecEventKind::kAuthReject), 0u);
  EXPECT_DOUBLE_EQ(w.rate_per_s(1, SecEventKind::kAuthReject), 1.0);
  EXPECT_EQ(w.shards(), (std::vector<std::uint32_t>{1, 2}));
  // The window slides: once the newest bucket is index 4, bucket 0 (the
  // three events before t=1000) falls off the 4-bucket window.
  w.add(1, SecEventKind::kAuthReject, 4'500);
  EXPECT_EQ(w.window_count(1, SecEventKind::kAuthReject), 2u);
}

TEST(WindowStatsTest, EwmaLagsTheOpenBucket) {
  WindowStats w(small_window());
  w.add(1, SecEventKind::kAuthReject, 500, 2);
  EXPECT_DOUBLE_EQ(w.ewma(1, SecEventKind::kAuthReject), 0.0);
  // roll_to(1000) closes bucket 0: ewma = 0.5 * 2.
  w.roll_to(1'000);
  EXPECT_DOUBLE_EQ(w.ewma(1, SecEventKind::kAuthReject), 1.0);
  // A spike in the open bucket is counted but NOT folded: a spike is
  // compared against the baseline that existed before it.
  w.add(1, SecEventKind::kAuthReject, 1'500, 10);
  EXPECT_EQ(w.window_count(1, SecEventKind::kAuthReject), 12u);
  EXPECT_DOUBLE_EQ(w.ewma(1, SecEventKind::kAuthReject), 1.0);
}

TEST(WindowStatsTest, IdleGapDecaysEwmaAndEmptiesWindow) {
  WindowStats w(small_window());
  w.add(1, SecEventKind::kAuthReject, 500, 8);
  w.roll_to(1'000);
  const double busy = w.ewma(1, SecEventKind::kAuthReject);
  ASSERT_GT(busy, 0.0);
  // A long idle stretch folds as zero-count buckets: the baseline decays
  // and the stale buckets drop out of the trailing window entirely.
  w.roll_to(60'000);
  EXPECT_LT(w.ewma(1, SecEventKind::kAuthReject), busy * 1e-6);
  EXPECT_EQ(w.window_count(1, SecEventKind::kAuthReject), 0u);
}

TEST(WindowStatsTest, MergeOrderIndependence) {
  // Per-shard windows merge at the barrier like the PR 7 stats merges:
  // bucket-wise sums over absolute indices, so any merge order agrees.
  const auto build = [](std::uint32_t shard_bias) {
    WindowStats w(small_window());
    w.add(shard_bias, SecEventKind::kAuthReject, 500, 3);
    w.add(7, SecEventKind::kRevocationHit, 1'500, 2);
    w.add(7, SecEventKind::kAuthReject, 2'200);
    return w;
  };
  const WindowStats a = build(1);
  const WindowStats b = build(2);
  WindowStats ab(small_window());
  ab.merge(a);
  ab.merge(b);
  WindowStats ba(small_window());
  ba.merge(b);
  ba.merge(a);
  for (const std::uint32_t shard : {1u, 2u, 7u}) {
    for (std::size_t k = 0; k < kSecEventKindCount; ++k) {
      const auto kind = static_cast<SecEventKind>(k);
      EXPECT_EQ(ab.window_count(shard, kind), ba.window_count(shard, kind))
          << "shard " << shard << " kind " << sec_event_name(kind);
    }
  }
  EXPECT_EQ(ab.window_count(7, SecEventKind::kRevocationHit), 4u);
  EXPECT_EQ(ab.window_count(7, SecEventKind::kAuthReject), 2u);
  EXPECT_EQ(ab.window_count(1, SecEventKind::kAuthReject), 3u);
}

HealthMonitorOptions tight_monitor(std::vector<HealthRule> rules,
                                   std::uint64_t cooldown_ms = 10'000,
                                   std::size_t log_cap = 1024) {
  HealthMonitorOptions o;
  o.window = small_window();
  o.eval_every_ms = 1'000;
  o.cooldown_ms = cooldown_ms;
  o.alert_log_cap = log_cap;
  o.rules = std::move(rules);
  return o;
}

TEST(HealthMonitorTest, ThresholdRuleNamesShardAndKind) {
  HealthMonitor m(tight_monitor(
      {{SecEventKind::kReplayDetected, "replay_storm", 5, 0, 0}}));
  for (int i = 0; i < 6; ++i)
    m.ingest(ev(SecEventKind::kReplayDetected, 2, 500));
  // A quieter shard stays below the bar and must not fire.
  m.ingest(ev(SecEventKind::kReplayDetected, 3, 500));
  m.tick(1'000);
  ASSERT_EQ(m.alerts_total(), 1u);
  ASSERT_EQ(m.alerts().size(), 1u);
  const HealthAlert& a = m.alerts().front();
  EXPECT_EQ(a.shard, 2u);
  EXPECT_EQ(a.kind, SecEventKind::kReplayDetected);
  EXPECT_STREQ(a.rule, "threshold");
  EXPECT_STREQ(a.label, "replay_storm");
  EXPECT_EQ(a.window_count, 6u);
  EXPECT_EQ(m.snapshot(2).alerts, 1u);
  EXPECT_EQ(m.snapshot(3).alerts, 0u);
  EXPECT_EQ(m.events_ingested(), 7u);
}

TEST(HealthMonitorTest, CooldownSuppressesSustainedStorm) {
  HealthMonitor m(tight_monitor(
      {{SecEventKind::kReplayDetected, "replay_storm", 5, 0, 0}}));
  for (int i = 0; i < 6; ++i)
    m.ingest(ev(SecEventKind::kReplayDetected, 2, 500));
  m.tick(1'000);
  EXPECT_EQ(m.alerts_total(), 1u);
  // The storm keeps raging through the 10 s cooldown: one alert, not ten.
  for (std::uint64_t t = 2'000; t <= 10'000; t += 1'000) {
    for (int i = 0; i < 6; ++i)
      m.ingest(ev(SecEventKind::kReplayDetected, 2, t - 500));
    m.tick(t);
  }
  EXPECT_EQ(m.alerts_total(), 1u);
  // Past the refractory period it may (and does) fire again.
  for (int i = 0; i < 6; ++i)
    m.ingest(ev(SecEventKind::kReplayDetected, 2, 11'500));
  m.tick(12'000);
  EXPECT_EQ(m.alerts_total(), 2u);
}

TEST(HealthMonitorTest, EwmaRuleFiresOnDeviationNotOnBaseline) {
  HealthMonitor m(tight_monitor(
      {{SecEventKind::kAuthReject, "auth_reject_burst", 0, 3.0, 4}}));
  // Steady 1 event/bucket baseline: window_count ≈ buckets × 1, EWMA → 1,
  // so the 3× deviation arm stays quiet.
  for (std::uint64_t t = 500; t < 10'000; t += 1'000) {
    m.ingest(ev(SecEventKind::kAuthReject, 1, t));
    m.tick(t + 500);
  }
  EXPECT_EQ(m.alerts_total(), 0u);
  // A 20-event spike runs far hotter than 3× the folded baseline. The
  // evaluation lands while the spike's bucket is still open, so the EWMA
  // it compares against is the pre-spike baseline.
  for (int i = 0; i < 20; ++i)
    m.ingest(ev(SecEventKind::kAuthReject, 1, 11'500));
  m.tick(11'900);
  ASSERT_EQ(m.alerts_total(), 1u);
  const HealthAlert& a = m.alerts().front();
  EXPECT_STREQ(a.rule, "ewma");
  EXPECT_EQ(a.shard, 1u);
  EXPECT_GT(a.ewma, 0.0);
}

TEST(HealthMonitorTest, AlertLogIsCappedButTotalsKeepCounting) {
  // cooldown 0 => the same storm re-fires every evaluation; a cap of 2
  // keeps the log bounded while alerts_total/alerts_dropped keep counting.
  HealthMonitor m(tight_monitor(
      {{SecEventKind::kInboxShed, "shed_saturation", 3, 0, 0}},
      /*cooldown_ms=*/0, /*log_cap=*/2));
  for (std::uint64_t t = 1'000; t <= 5'000; t += 1'000) {
    for (int i = 0; i < 4; ++i)
      m.ingest(ev(SecEventKind::kInboxShed, 0, t - 500));
    m.tick(t);
  }
  EXPECT_EQ(m.alerts_total(), 5u);
  EXPECT_EQ(m.alerts().size(), 2u);
  EXPECT_EQ(m.alerts_dropped(), 3u);
  // summary_json keeps the invariant health_report.py --validate checks:
  // len(alert_log) + alerts_dropped == alerts.
  const std::string json = m.summary_json();
  EXPECT_NE(json.find("\"schema\": \"peace.health.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"alerts\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"alerts_dropped\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"shed_saturation\""), std::string::npos);
}

TEST(HealthMonitorTest, AlertsRideTheEventStreamAndPublishGauges) {
  const std::uint64_t alerts_before =
      sec_event_count(SecEventKind::kHealthAlert);
  HealthMonitor m(tight_monitor(
      {{SecEventKind::kRevocationHit, "revocation_storm", 2, 0, 0}}));
  for (int i = 0; i < 3; ++i)
    m.ingest(ev(SecEventKind::kRevocationHit, 5, 500));
  m.tick(1'000);
  ASSERT_EQ(m.alerts_total(), 1u);
  // The firing emitted a health_alert onto the same stream the raw events
  // ride (the always-on per-kind counter sees it even under PEACE_OBS=OFF).
  EXPECT_EQ(sec_event_count(SecEventKind::kHealthAlert), alerts_before + 1);
  // A monitor never reacts to its own output.
  m.ingest(ev(SecEventKind::kHealthAlert, 5, 1'001));
  EXPECT_EQ(m.events_ingested(), 3u);
  Registry& reg = Registry::global();
  reg.reset();
  m.publish(reg);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"health.alerts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"health.s5.alerts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"health.s5.revocation_hit.window\": 3"),
            std::string::npos);
  reg.reset();
  obs::drain_sec_events();
  Tracer::global().clear();
}

#ifndef PEACE_OBS_DISABLED

class MetroHealthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

TEST_F(MetroHealthTest, ChaosBurstsRaiseAlertsNamingShardAndKind) {
  // The acceptance regression: a seeded metro day with a midday forged-M.2
  // burst at the stadium shard and a revoked mole replaying at downtown
  // must produce health_alert events attributing the right shard and the
  // right underlying kind.
  mesh::MetroCityConfig config;
  config.shards = 4;
  config.synthetic_users = 2'000;
  config.cohort_users = 8;
  config.day_ms = 8'640'000;  // a tenth of a day keeps the test quick
  config.revocation_waves = 2;
  config.seed = "health-regression";
  config.forgery_burst = true;
  config.revoked_burst = true;
  HealthMonitor monitor;
  config.health = &monitor;
  obs::enable(true);
  const mesh::MetroCityReport report = mesh::run_metro_city(config);
  obs::enable(false);
  obs::drain_sec_events();
  Tracer::global().clear();

  EXPECT_EQ(report.health_alerts, monitor.alerts_total());
  ASSERT_GT(monitor.alerts_total(), 0u);
  const auto stadium = static_cast<std::uint32_t>(config.shards - 1);
  bool forgery_at_stadium = false;
  bool revocation_at_downtown = false;
  for (const HealthAlert& a : monitor.alerts()) {
    if (a.kind == SecEventKind::kBatchForgeryAttributed && a.shard == stadium)
      forgery_at_stadium = true;
    if (a.kind == SecEventKind::kRevocationHit && a.shard == 0)
      revocation_at_downtown = true;
    // No detector may blame a shard that doesn't exist.
    EXPECT_LT(a.shard, config.shards);
  }
  EXPECT_TRUE(forgery_at_stadium)
      << "no forgery_spike alert attributed to the stadium shard";
  EXPECT_TRUE(revocation_at_downtown)
      << "no revocation_storm alert attributed to downtown";
}

#endif  // PEACE_OBS_DISABLED

}  // namespace
}  // namespace peace::obs
