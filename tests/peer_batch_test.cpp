// Pooled-equals-sequential cross-check for the user-user (M~.1/M~.2) batch
// path: a responder running process_peer_hellos on a VerifyPool must be
// bit-identical — replies, rng consumption, pending-session state, rejection
// behaviour — to a clone processing the same hellos one at a time.
#include <gtest/gtest.h>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

class PeerBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  PeerBatchTest() : no_(crypto::Drbg::from_string("pb-no")) {
    gm_ = std::make_unique<GroupManager>(no_.register_group("G", 16, ttp_));
    auto provision = no_.provision_router(1, kFarFuture);
    router_ = std::make_unique<MeshRouter>(
        1, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("pb-router"));
    router_->install_revocation_lists(no_.current_crl(), no_.current_url());
  }

  std::unique_ptr<User> make_user(const std::string& uid,
                                  ProtocolConfig config = {}) {
    // Deterministic DRBG seeded by uid only: two users built with the same
    // uid are exact clones apart from `config`.
    auto user = std::make_unique<User>(uid, no_.params(),
                                       crypto::Drbg::from_string(uid), config);
    if (enrollments_.find(uid) == enrollments_.end())
      enrollments_.emplace(uid, gm_->enroll(uid, ttp_));
    user->complete_enrollment(enrollments_.at(uid));
    return user;
  }

  /// A mixed batch of hellos for a responder at local time 1110: valid ones
  /// from alice and carol, a tampered signature, a stale timestamp, and —
  /// once mallory is revoked — a hello whose URL scan must reject.
  std::vector<PeerHello> make_hellos(const BeaconMessage& beacon,
                                     User& alice, User& carol, User& mallory) {
    std::vector<PeerHello> hellos;
    hellos.push_back(alice.make_peer_hello(beacon.g, 1100));
    PeerHello tampered = carol.make_peer_hello(beacon.g, 1101);
    tampered.ts1 += 1;  // signature no longer covers the payload
    hellos.push_back(tampered);
    hellos.push_back(mallory.make_peer_hello(beacon.g, 1102));
    hellos.push_back(carol.make_peer_hello(beacon.g, 1000 - 60000));  // stale
    hellos.push_back(carol.make_peer_hello(beacon.g, 1103));
    return hellos;
  }

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> gm_;
  std::unique_ptr<MeshRouter> router_;
  std::map<std::string, GroupManager::Enrollment> enrollments_;
};

TEST_F(PeerBatchTest, PooledBatchBitIdenticalToSequential) {
  auto alice = make_user("alice");
  auto carol = make_user("carol");
  auto mallory = make_user("mallory");
  no_.revoke_user_key(enrollments_.at("mallory").index, 900);
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());

  // Two clones of the responder: same uid seed, different thread counts.
  ProtocolConfig pooled_cfg;
  pooled_cfg.verify_threads = 4;
  auto sequential = make_user("bob");
  auto pooled = make_user("bob", pooled_cfg);

  // Both learn g and the URL (with mallory's token) from the same beacon.
  const BeaconMessage beacon = router_->make_beacon(1000);
  ASSERT_TRUE(sequential->process_beacon(beacon, 1000).has_value());
  ASSERT_TRUE(pooled->process_beacon(beacon, 1000).has_value());

  const std::vector<PeerHello> hellos =
      make_hellos(beacon, *alice, *carol, *mallory);
  std::vector<std::optional<PeerReply>> expect;
  for (const PeerHello& h : hellos)
    expect.push_back(sequential->process_peer_hello(h, 1110));
  const auto got = pooled->process_peer_hellos(hellos, 1110);

  // Only the two honest hellos produce replies; tampered, revoked, and
  // stale are rejected in both modes.
  ASSERT_EQ(expect.size(), got.size());
  ASSERT_TRUE(expect[0].has_value());
  EXPECT_FALSE(expect[1].has_value());
  EXPECT_FALSE(expect[2].has_value());
  EXPECT_FALSE(expect[3].has_value());
  ASSERT_TRUE(expect[4].has_value());
  for (std::size_t i = 0; i < hellos.size(); ++i) {
    ASSERT_EQ(expect[i].has_value(), got[i].has_value()) << i;
    if (expect[i].has_value()) {
      EXPECT_EQ(expect[i]->to_bytes(), got[i]->to_bytes()) << i;
    }
  }
  EXPECT_EQ(pooled->stats().peer_verify_batches, 1u);
  // The stale hello is weeded out by the sequential precheck pass and
  // never reaches the pool; the other four all enter the batch.
  EXPECT_EQ(pooled->stats().peer_batched_hellos, hellos.size() - 1);
  EXPECT_EQ(sequential->stats().peer_verify_batches, 0u);

  // Both responders hold working pending-session state: each initiator can
  // complete a handshake against one of them (a reply can only be consumed
  // once, so alice finishes with the pooled clone and carol with the
  // sequential one).
  auto est_alice = alice->process_peer_reply(*got[0], 1120);
  ASSERT_TRUE(est_alice.has_value());
  EXPECT_TRUE(pooled->process_peer_confirm(est_alice->confirm).has_value());
  auto est_carol = carol->process_peer_reply(*expect[4], 1120);
  ASSERT_TRUE(est_carol.has_value());
  EXPECT_TRUE(
      sequential->process_peer_confirm(est_carol->confirm).has_value());
  EXPECT_EQ(sequential->stats().peer_sessions_established,
            pooled->stats().peer_sessions_established);
}

TEST_F(PeerBatchTest, SingletonAndEmptyBatchesSkipThePool) {
  auto alice = make_user("alice");
  ProtocolConfig pooled_cfg;
  pooled_cfg.verify_threads = 4;
  auto bob = make_user("bob", pooled_cfg);
  const BeaconMessage beacon = router_->make_beacon(1000);
  ASSERT_TRUE(bob->process_beacon(beacon, 1000).has_value());

  EXPECT_TRUE(bob->process_peer_hellos({}, 1110).empty());
  const PeerHello hello = alice->make_peer_hello(beacon.g, 1100);
  const auto replies =
      bob->process_peer_hellos(std::span(&hello, 1), 1110);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].has_value());
  // A batch of one is not worth a pool dispatch.
  EXPECT_EQ(bob->stats().peer_verify_batches, 0u);
  EXPECT_EQ(bob->stats().peer_batched_hellos, 0u);
}

TEST_F(PeerBatchTest, BatchScanPreparesBasesOncePerHello) {
  // The responder's URL scan (3 revoked tokens) prepares each hello's
  // bases exactly once; matches_token builds no per-token G2Prepared.
  for (const char* uid : {"r1", "r2", "r3"}) {
    auto u = make_user(uid);
    no_.revoke_user_key(enrollments_.at(uid).index, 900);
  }
  router_->install_revocation_lists(no_.current_crl(), no_.current_url());

  auto alice = make_user("alice");
  auto carol = make_user("carol");
  auto bob = make_user("bob");
  const BeaconMessage beacon = router_->make_beacon(1000);
  ASSERT_TRUE(bob->process_beacon(beacon, 1000).has_value());

  const std::vector<PeerHello> hellos = {
      alice->make_peer_hello(beacon.g, 1100),
      carol->make_peer_hello(beacon.g, 1101),
  };
  const std::uint64_t before = curve::g2_prepared_count();
  const auto replies = bob->process_peer_hellos(hellos, 1110);
  EXPECT_EQ(curve::g2_prepared_count() - before, hellos.size());
  for (const auto& r : replies) EXPECT_TRUE(r.has_value());
}

}  // namespace
}  // namespace peace::proto
