// Crash-recovery suite for the durable operator control plane
// (docs/ARCHITECTURE.md §8): WAL framing and hash-chain integrity, hostile
// damaged logs (torn tails, bit rot, forked history, duplicated splices),
// the differential byte-identical-recovery property at every record
// boundary, spill of bounded receipt/GRT caches to the log, and the
// headline crash-during-revocation-wave drill with resyncing routers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mesh/recovery.hpp"
#include "peace/persist/chaos.hpp"
#include "peace/persist/control.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::persist {
namespace {

namespace fs = std::filesystem;

constexpr proto::Timestamp kDay = 86400;
constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/peace-persist-" + name;
  fs::remove_all(dir);
  return dir;
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

std::string newest_segment(const std::string& dir) {
  std::string best;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name.ends_with(".wal") &&
        (best.empty() || name > best))
      best = name;
  }
  return dir + "/" + best;
}

void push_be32(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back((v >> (8 * i)) & 0xff);
}

void push_be64(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back((v >> (8 * i)) & 0xff);
}

// Appends a frame that passes magic, CRC, and sequence validation but whose
// chain value extends a *different* history — a forked rewrite. Only the
// hash chain can catch this.
void append_forked_record(const std::string& dir) {
  const std::string path = newest_segment(dir);
  const auto scan = WalSegment::scan_file(path);
  const std::uint64_t seq = scan.last_seq + 1;
  const std::uint8_t type = 4;
  const Bytes payload = to_bytes("forked-history");
  const Bytes fake_chain = chain_next(genesis_chain(), seq, type, payload);

  Bytes frame;
  push_be32(frame, WalSegment::kRecordMagic);
  push_be64(frame, seq);
  frame.push_back(type);
  push_be32(frame, static_cast<std::uint32_t>(payload.size()));
  append(frame, payload);
  append(frame, fake_chain);
  push_be32(frame, crc32(frame));

  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
}

void corrupt_all_snapshots(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".snap") continue;
    Bytes data = read_file(entry.path().string());
    ASSERT_GT(data.size(), 21u);
    data[20] ^= 0x5a;  // inside the bound chain value -> CRC mismatch
    write_file(entry.path().string(), data);
  }
}

// --- deterministic control-plane scenario --------------------------------
//
// A scripted rolling-revocation scenario where every op appends exactly one
// WAL record, so op boundaries enumerate record boundaries. Ops carry their
// cross-op state (pending enrollments, issued indexes) in a ScenarioCtx
// that stays valid across a crash at any op boundary.

struct ScenarioCtx {
  std::vector<proto::GroupId> gids;
  std::map<std::string, proto::GroupManager::Enrollment> pending;
  std::vector<proto::KeyIndex> issued;
};

using Op = std::function<void(ControlPlane&, ScenarioCtx&)>;

void push_enroll_ops(std::vector<Op>& ops, std::size_t group, std::size_t era,
                     std::size_t member) {
  const std::string uid = "user-" + std::to_string(era) + "-" +
                          std::to_string(group) + "-" + std::to_string(member);
  ops.push_back([uid, group](ControlPlane& cp, ScenarioCtx& ctx) {
    ctx.pending[uid] = cp.enroll(ctx.gids[group], uid);
    ctx.issued.push_back(ctx.pending[uid].index);
  });
  ops.push_back([uid](ControlPlane& cp, ScenarioCtx& ctx) {
    proto::User user(uid, cp.no().params(),
                     crypto::Drbg::from_string("seed-" + uid));
    const auto& enr = ctx.pending.at(uid);
    const auto sig = user.complete_enrollment(enr);
    cp.record_receipt(enr, user.receipt_public_key(), sig);
  });
}

std::vector<Op> build_scenario(std::size_t members_per_group) {
  std::vector<Op> ops;
  ops.push_back([](ControlPlane& cp, ScenarioCtx& ctx) {
    ctx.gids.push_back(cp.register_group("transit-east", 8));
  });
  ops.push_back([](ControlPlane& cp, ScenarioCtx& ctx) {
    ctx.gids.push_back(cp.register_group("transit-west", 6));
  });
  for (std::size_t m = 0; m < members_per_group; ++m)
    for (std::size_t g = 0; g < 2; ++g) push_enroll_ops(ops, g, 1, m);
  ops.push_back([](ControlPlane& cp, ScenarioCtx&) {
    cp.provision_router(401, kFarFuture);
  });
  ops.push_back([](ControlPlane& cp, ScenarioCtx&) {
    cp.provision_router(402, kFarFuture);
  });
  // Rolling revocation wave over the first few issued keys, a router in the
  // middle, then a master-key rotation and a second, smaller era.
  const std::size_t wave = std::min<std::size_t>(3, 2 * members_per_group);
  for (std::size_t k = 0; k < wave; ++k)
    ops.push_back([k](ControlPlane& cp, ScenarioCtx& ctx) {
      EXPECT_TRUE(cp.revoke_user_key(ctx.issued[k], kDay * (k + 1)));
    });
  ops.push_back([](ControlPlane& cp, ScenarioCtx&) {
    EXPECT_TRUE(cp.revoke_router(402, 5 * kDay));
  });
  ops.push_back([](ControlPlane& cp, ScenarioCtx&) {
    cp.rotate_master_key(6 * kDay);
  });
  ops.push_back([](ControlPlane& cp, ScenarioCtx& ctx) {
    cp.reissue_group(ctx.gids[0], 4);
  });
  ops.push_back([](ControlPlane& cp, ScenarioCtx& ctx) {
    cp.reissue_group(ctx.gids[1], 4);
  });
  for (std::size_t g = 0; g < 2; ++g) push_enroll_ops(ops, g, 2, 0);
  ops.push_back([](ControlPlane& cp, ScenarioCtx& ctx) {
    EXPECT_TRUE(cp.revoke_user_key(ctx.issued.back(), 7 * kDay));
  });
  return ops;
}

class PersistTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

// --- WAL framing ---------------------------------------------------------

TEST_F(PersistTest, Crc32MatchesReferenceVector) {
  // The canonical CRC-32 check value; zlib.crc32 agrees, which is what
  // tools/log_inspect.py relies on.
  EXPECT_EQ(crc32(as_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST_F(PersistTest, ChainAdvancesOverEveryFramedField) {
  const Bytes g = genesis_chain();
  ASSERT_EQ(g.size(), 32u);
  const Bytes p = to_bytes("payload");
  const Bytes c = chain_next(g, 1, 7, p);
  EXPECT_NE(c, chain_next(g, 2, 7, p));           // seq bound
  EXPECT_NE(c, chain_next(g, 1, 8, p));           // type bound
  EXPECT_NE(c, chain_next(g, 1, 7, Bytes{}));     // payload bound
  EXPECT_NE(c, chain_next(c, 1, 7, p));           // predecessor bound
  EXPECT_EQ(c, chain_next(g, 1, 7, p));           // deterministic
}

TEST_F(PersistTest, SegmentAppendScanReopenRoundTrip) {
  const std::string dir = fresh_dir("segment");
  fs::create_directories(dir);
  const std::string path = dir + "/seg.wal";
  {
    auto seg = WalSegment::create(path, 0, genesis_chain());
    EXPECT_EQ(seg.append(7, to_bytes("alpha")), 1u);
    EXPECT_EQ(seg.append(8, to_bytes("beta")), 2u);
    seg.sync();
  }
  const auto scan = WalSegment::scan_file(path);
  EXPECT_EQ(scan.records, 2u);
  EXPECT_EQ(scan.last_seq, 2u);
  EXPECT_EQ(scan.damage, WalDamage::kNone);
  EXPECT_EQ(scan.dropped_bytes, 0u);

  WalScanResult reopened;
  std::vector<WalRecord> seen;
  auto seg = WalSegment::open(
      path, reopened,
      [&](const WalRecord& rec, std::uint64_t) { seen.push_back(rec); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].payload, to_bytes("alpha"));
  EXPECT_EQ(seen[1].type, 8u);
  EXPECT_EQ(seg.append(7, to_bytes("gamma")), 3u);
  EXPECT_EQ(WalSegment::scan_file(path).records, 3u);
}

TEST_F(PersistTest, ReadAtValidatesFraming) {
  const std::string dir = fresh_dir("read-at");
  fs::create_directories(dir);
  const std::string path = dir + "/seg.wal";
  {
    auto seg = WalSegment::create(path, 0, genesis_chain());
    for (int i = 0; i < 3; ++i)
      seg.append(1, to_bytes("record-" + std::to_string(i)));
    seg.sync();
  }
  std::vector<std::uint64_t> offsets;
  WalSegment::scan_file(path, [&](const WalRecord&, std::uint64_t off) {
    offsets.push_back(off);
  });
  ASSERT_EQ(offsets.size(), 3u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const auto rec = WalSegment::read_at(path, offsets[i]);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->seq, i + 1);
    EXPECT_EQ(rec->payload, to_bytes("record-" + std::to_string(i)));
  }
  EXPECT_FALSE(WalSegment::read_at(path, offsets[1] + 1).has_value());
  EXPECT_FALSE(WalSegment::read_at(path, 1u << 20).has_value());
}

TEST_F(PersistTest, ChainCatchesCrcFixedRewrite) {
  // Rewrite a middle record's payload AND fix up its CRC: framing validates
  // but the hash chain does not — the scan must stop there with kBadChain.
  const std::string dir = fresh_dir("rewrite");
  fs::create_directories(dir);
  const std::string path = dir + "/seg.wal";
  {
    auto seg = WalSegment::create(path, 0, genesis_chain());
    seg.append(1, to_bytes("one"));
    seg.append(1, to_bytes("two"));
    seg.append(1, to_bytes("three"));
    seg.sync();
  }
  std::vector<std::uint64_t> offsets;
  std::vector<std::size_t> lens;
  WalSegment::scan_file(path, [&](const WalRecord& rec, std::uint64_t off) {
    offsets.push_back(off);
    lens.push_back(rec.payload.size());
  });
  Bytes data = read_file(path);
  const std::size_t frame = offsets[1];
  const std::size_t total = 17 + lens[1] + 32 + 4;
  data[frame + 17] ^= 0xff;  // first payload byte
  Bytes fixed_crc;
  push_be32(fixed_crc, crc32(BytesView(data).subspan(frame, total - 4)));
  std::copy(fixed_crc.begin(), fixed_crc.end(),
            data.begin() + static_cast<std::ptrdiff_t>(frame + total - 4));
  write_file(path, data);

  const auto scan = WalSegment::scan_file(path);
  EXPECT_EQ(scan.damage, WalDamage::kBadChain);
  EXPECT_EQ(scan.records, 1u);
  EXPECT_EQ(scan.last_seq, 1u);
}

TEST_F(PersistTest, StoreSnapshotRotatesSegmentsAndRecovers) {
  const std::string dir = fresh_dir("store");
  const Bytes snap = to_bytes("state-after-three");
  {
    auto store = DurableStore::create(dir);
    for (int i = 0; i < 3; ++i) store.append(1, to_bytes("r" + std::to_string(i)));
    store.write_snapshot(snap);
    store.append(2, to_bytes("tail-0"));
    store.append(2, to_bytes("tail-1"));
  }
  auto rec = DurableStore::open(dir);
  EXPECT_EQ(rec.report.snapshot_seq, 3u);
  EXPECT_EQ(rec.snapshot, snap);
  ASSERT_EQ(rec.tail.size(), 2u);
  EXPECT_EQ(rec.tail[0].record.seq, 4u);
  EXPECT_EQ(rec.tail[1].record.payload, to_bytes("tail-1"));
  EXPECT_EQ(rec.report.records_scanned, 5u);
  EXPECT_EQ(rec.report.segments, 2u);
  EXPECT_EQ(rec.report.damage, "");

  // The spill path: refs resolve across restarts, with validation.
  const auto back = rec.store.read(rec.tail[0].ref);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, to_bytes("tail-0"));
  RecordRef bogus = rec.tail[0].ref;
  bogus.offset += 3;
  EXPECT_FALSE(rec.store.read(bogus).has_value());
}

// --- differential crash recovery -----------------------------------------

TEST_F(PersistTest, DifferentialRecoveryAtEveryRecordBoundary) {
  // Reference run, capturing the canonical state image after *every* WAL
  // record. Then for each record boundary, materialize the crash with
  // crash_copy and check recover() restores byte-identical state. Testing
  // every boundary subsumes the "100 random crash points" requirement for
  // this scenario length.
  const std::string ref_dir = fresh_dir("diff-ref");
  ControlPlaneOptions opts;
  opts.snapshot_every = 5;
  opts.store.keep_snapshots = 1000;  // crash points need historical snapshots
  auto ops = build_scenario(3);

  std::optional<ControlPlane> cp(
      ControlPlane::create(ref_dir, crypto::Drbg::from_string("diff-op"), opts));
  ScenarioCtx ctx;
  std::map<std::uint64_t, Bytes> states;
  states[cp->last_seq()] = cp->state_bytes();
  for (auto& op : ops) {
    const std::uint64_t before = cp->last_seq();
    op(*cp, ctx);
    ASSERT_EQ(cp->last_seq(), before + 1) << "scenario op must be one record";
    states[cp->last_seq()] = cp->state_bytes();
  }
  const std::uint64_t last = cp->last_seq();
  cp.reset();
  ASSERT_GE(last, 25u);

  for (std::uint64_t seq = 0; seq <= last; ++seq) {
    const std::string dst = fresh_dir("diff-crash");
    crash_copy(ref_dir, dst, seq);
    ControlPlane recovered = ControlPlane::recover(dst, opts);
    EXPECT_EQ(recovered.last_seq(), seq);
    ASSERT_EQ(recovered.state_bytes(), states.at(seq))
        << "recovery diverged after crash at record " << seq;
  }
}

TEST_F(PersistTest, RecoveredOperatorContinuesByteIdentical) {
  // Recovery restores the DRBG too, so a recovered operator that finishes
  // the scenario must land on exactly the reference final state — future
  // randomness included.
  auto ops = build_scenario(2);
  ControlPlaneOptions opts;
  opts.snapshot_every = 6;
  opts.store.keep_snapshots = 1000;

  Bytes ref_final;
  {
    ControlPlane cp = ControlPlane::create(
        fresh_dir("cont-ref"), crypto::Drbg::from_string("cont-op"), opts);
    ScenarioCtx ctx;
    for (auto& op : ops) op(cp, ctx);
    ref_final = cp.state_bytes();
  }

  for (const std::size_t cut : {std::size_t(3), ops.size() / 2, ops.size() - 2}) {
    const std::string live = fresh_dir("cont-live");
    const std::string crashed = fresh_dir("cont-crashed");
    ScenarioCtx ctx;
    std::optional<ControlPlane> cp(ControlPlane::create(
        live, crypto::Drbg::from_string("cont-op"), opts));
    for (std::size_t i = 0; i < cut; ++i) ops[i](*cp, ctx);
    const std::uint64_t seq = cp->last_seq();
    cp.reset();

    crash_copy(live, crashed, seq);
    cp.emplace(ControlPlane::recover(crashed, opts));
    for (std::size_t i = cut; i < ops.size(); ++i) ops[i](*cp, ctx);
    EXPECT_EQ(cp->state_bytes(), ref_final)
        << "continuation diverged after crash at op " << cut;
  }
}

// --- hostile / damaged logs ----------------------------------------------

class DamagedLogTest : public PersistTest {
 protected:
  // One segment (snapshots only on demand -> just the genesis snapshot),
  // so the damage helpers aimed at the newest segment hit real history.
  void build(const std::string& name) {
    dir_ = fresh_dir(name);
    opts_.snapshot_every = 0;
    ControlPlane cp =
        ControlPlane::create(dir_, crypto::Drbg::from_string("dmg-op"), opts_);
    ScenarioCtx ctx;
    states_[cp.last_seq()] = cp.state_bytes();
    for (auto& op : build_scenario(1)) {
      op(cp, ctx);
      states_[cp.last_seq()] = cp.state_bytes();
    }
    last_ = cp.last_seq();
  }

  std::string dir_;
  ControlPlaneOptions opts_;
  std::map<std::uint64_t, Bytes> states_;
  std::uint64_t last_ = 0;
};

TEST_F(DamagedLogTest, TornTailRecoversToLastGoodRecord) {
  build("torn");
  truncate_tail(dir_, 10);
  ControlPlane cp = ControlPlane::recover(dir_, opts_);
  EXPECT_EQ(cp.last_seq(), last_ - 1);
  EXPECT_EQ(cp.state_bytes(), states_.at(last_ - 1));
  EXPECT_EQ(cp.recovery_report().damage, "truncated");
  EXPECT_GT(cp.recovery_report().bytes_truncated, 0u);
  // The truncated log is live again: the next op reuses the dropped seq
  // (that history never escaped the site).
  cp.provision_router(999, kFarFuture);
  EXPECT_EQ(cp.last_seq(), last_);
}

TEST_F(DamagedLogTest, BitFlipRecoversToLastGoodRecord) {
  build("bitflip");
  corrupt_byte(dir_, 20, 0x10);  // inside the last frame's chain value
  ControlPlane cp = ControlPlane::recover(dir_, opts_);
  EXPECT_EQ(cp.last_seq(), last_ - 1);
  EXPECT_EQ(cp.state_bytes(), states_.at(last_ - 1));
  EXPECT_EQ(cp.recovery_report().damage, "bad_crc");
}

TEST_F(DamagedLogTest, ForkedHistoryIsRejectedByTheChain) {
  build("fork");
  append_forked_record(dir_);
  ControlPlane cp = ControlPlane::recover(dir_, opts_);
  EXPECT_EQ(cp.last_seq(), last_);
  EXPECT_EQ(cp.state_bytes(), states_.at(last_));
  EXPECT_EQ(cp.recovery_report().damage, "bad_chain");
}

TEST_F(DamagedLogTest, DuplicatedSpliceIsRejectedAsSequenceBreak) {
  build("dup");
  duplicate_last_record(dir_);
  ControlPlane cp = ControlPlane::recover(dir_, opts_);
  EXPECT_EQ(cp.last_seq(), last_);
  EXPECT_EQ(cp.state_bytes(), states_.at(last_));
  EXPECT_EQ(cp.recovery_report().damage, "bad_seq");
}

TEST_F(DamagedLogTest, AllSnapshotsDamagedFailsCleanNotPartially) {
  build("nosnap");
  corrupt_all_snapshots(dir_);
  EXPECT_THROW(ControlPlane::recover(dir_, opts_), Error);
  // Failing clean means failing the same way twice: nothing was mutated.
  EXPECT_THROW(ControlPlane::recover(dir_, opts_), Error);
}

// --- bounded caches spilling to the log ----------------------------------

TEST_F(PersistTest, ReceiptsSpillToLogAndReadBack) {
  const std::string dir = fresh_dir("spill-receipts");
  ControlPlaneOptions opts;
  opts.gm_receipt_cache_cap = 2;
  std::optional<ControlPlane> cp(
      ControlPlane::create(dir, crypto::Drbg::from_string("spill-op"), opts));
  const auto gid = cp->register_group("commuters", 8);
  std::vector<proto::KeyIndex> indexes;
  std::vector<proto::G1> pubkeys;
  for (int i = 0; i < 5; ++i) {
    const std::string uid = "member-" + std::to_string(i);
    const auto enr = cp->enroll(gid, uid);
    proto::User user(uid, cp->no().params(),
                     crypto::Drbg::from_string("seed-" + uid));
    cp->record_receipt(enr, user.receipt_public_key(),
                       user.complete_enrollment(enr));
    indexes.push_back(enr.index);
    pubkeys.push_back(user.receipt_public_key());
  }
  EXPECT_EQ(cp->gm(gid).receipts_in_memory(), 2u);
  EXPECT_EQ(cp->receipts_spilled(), 3u);
  // Spilled receipts are NOT in the GM anymore...
  EXPECT_FALSE(cp->gm(gid).receipt_for(indexes[0]).has_value());
  // ...but the control plane reads every one back from the log.
  for (std::size_t i = 0; i < indexes.size(); ++i) {
    const auto receipt = cp->receipt_for(indexes[i]);
    ASSERT_TRUE(receipt.has_value()) << "receipt " << i;
    EXPECT_EQ(receipt->user_public_key, pubkeys[i]);
  }

  // And the whole arrangement survives a restart.
  cp.reset();
  cp.emplace(ControlPlane::recover(dir, opts));
  EXPECT_EQ(cp->gm(gid).receipts_in_memory(), 2u);
  for (std::size_t i = 0; i < indexes.size(); ++i)
    EXPECT_TRUE(cp->receipt_for(indexes[i]).has_value()) << "receipt " << i;
}

TEST_F(PersistTest, SpilledEraStillAuditableAndTraceable) {
  const std::string dir = fresh_dir("spill-grt");
  ControlPlaneOptions opts;
  opts.archived_era_cache_cap = 0;  // spill every archived era immediately
  ControlPlane cp =
      ControlPlane::create(dir, crypto::Drbg::from_string("era-op"), opts);
  const auto gid = cp.register_group("era-zero", 4);
  const auto enr = cp.enroll(gid, "spill-user");
  proto::User user("spill-user", cp.no().params(),
                   crypto::Drbg::from_string("seed-spill-user"));
  cp.record_receipt(enr, user.receipt_public_key(),
                    user.complete_enrollment(enr));
  const auto provision = cp.provision_router(77, kFarFuture);
  proto::MeshRouter router(77, provision.keypair, provision.certificate,
                           cp.no().params(),
                           crypto::Drbg::from_string("router-77"));
  router.install_revocation_lists(cp.no().current_crl(), cp.no().current_url());
  const auto m2 = user.process_beacon(router.make_beacon(kDay), kDay);
  ASSERT_TRUE(m2.has_value());

  cp.rotate_master_key(2 * kDay);
  ASSERT_EQ(cp.no().archived_era_count(), 1u);
  EXPECT_TRUE(cp.no().era_spilled(0));
  EXPECT_GT(cp.grt_entries_spilled(), 0u);
  // The NO's in-memory knowledge of the era is gone...
  EXPECT_FALSE(cp.no().audit(*m2).has_value());
  // ...yet the control plane audits the archived session from the log,
  EXPECT_GT(cp.no().era_token_count(0), 0u);
  const auto audit = cp.audit(*m2);
  ASSERT_TRUE(audit.has_value());
  EXPECT_EQ(audit->group_id, gid);
  EXPECT_EQ(audit->index, enr.index);
  // ...and the full law-authority trace still lands on the uid with the
  // non-repudiation receipt on file.
  const auto traced = cp.trace(*m2);
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->uid, "spill-user");
  EXPECT_TRUE(traced->receipt_on_file);
}

// --- headline scenario ----------------------------------------------------

TEST_F(PersistTest, RevocationWaveSurvivesCrashAtEveryBoundary) {
  // The acceptance drill: the operator is killed after every WAL record of
  // a rolling revocation wave (with a mid-wave rotation); router segments
  // resync off the recovered delta chain after each crash. Zero rollback
  // observations and a byte-identical final state are required.
  mesh::RecoveryDrillConfig cfg;
  cfg.dir = fresh_dir("drill");
  cfg.members = 4;
  cfg.revocations = 3;
  cfg.router_segments = 2;
  cfg.snapshot_every = 6;
  cfg.crash_every = 1;
  const auto report = mesh::run_recovery_drill(cfg);
  EXPECT_GT(report.records, 0u);
  EXPECT_GT(report.crashes, report.records / 2);
  EXPECT_GT(report.deltas_applied, 0u);
  EXPECT_EQ(report.rollback_violations, 0u);
  EXPECT_TRUE(report.converged);
  EXPECT_TRUE(report.state_matches_reference);
}

}  // namespace
}  // namespace peace::persist
