// The handshake reliability layer (PROTOCOL.md §10) at the protocol tier:
// idempotent resends of cached M.3 / M~.2 / M~.3 for byte-identical
// duplicates, TTL + hard-cap garbage collection of pending-handshake
// state, bounded replay caches, graceful sequence-space exhaustion, and
// the duplicate-frame no-op guarantees.
#include <gtest/gtest.h>

#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::proto {
namespace {

class ReliabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  ReliabilityTest() : no_(crypto::Drbg::from_string("rel-no")) {
    gm_ = std::make_unique<GroupManager>(no_.register_group("G", 8, ttp_));
  }

  std::unique_ptr<User> make_user(const std::string& uid,
                                  ProtocolConfig config = {}) {
    auto user = std::make_unique<User>(uid, no_.params(),
                                       crypto::Drbg::from_string(uid), config);
    user->complete_enrollment(gm_->enroll(uid, ttp_));
    return user;
  }

  std::unique_ptr<MeshRouter> make_router(RouterId id,
                                          ProtocolConfig config = {}) {
    auto provision = no_.provision_router(id, kFarFuture);
    auto router = std::make_unique<MeshRouter>(
        id, provision.keypair, provision.certificate, no_.params(),
        crypto::Drbg::from_string("router" + std::to_string(id)), config);
    router->install_revocation_lists(no_.current_crl(), no_.current_url());
    return router;
  }

  static constexpr Timestamp kFarFuture = 1000ull * 86400 * 365;

  NetworkOperator no_;
  TrustedThirdParty ttp_;
  std::unique_ptr<GroupManager> gm_;
};

ProtocolConfig idempotent_config() {
  ProtocolConfig config;
  config.idempotent_resend = true;
  return config;
}

// --- router-side idempotent resend (M.2 -> cached M.3) --------------------

TEST_F(ReliabilityTest, DuplicateAccessRequestResendsCachedConfirm) {
  const ProtocolConfig config = idempotent_config();
  auto router = make_router(1, config);
  auto alice = make_user("alice", config);

  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto first = router->handle_access_request(*m2, 1010);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(router->session_count(), 1u);

  // A byte-identical retransmission (the M.3 was lost on the air) gets the
  // cached confirmation back: same bytes, no second session, no new
  // acceptance — and the user can still complete from it.
  auto resent = router->handle_access_request(
      AccessRequest::from_bytes(m2->to_bytes()), 1020);
  ASSERT_TRUE(resent.has_value());
  EXPECT_EQ(resent->confirm.to_bytes(), first->confirm.to_bytes());
  EXPECT_EQ(router->session_count(), 1u);
  EXPECT_EQ(router->stats().accepted, 1u);
  EXPECT_EQ(router->stats().confirms_resent, 1u);
  EXPECT_EQ(router->stats().rejected_replay, 0u);

  auto session = alice->process_access_confirm(resent->confirm);
  EXPECT_TRUE(session.has_value());
}

TEST_F(ReliabilityTest, StrictModeStillRejectsDuplicatesAsReplays) {
  auto router = make_router(1);  // idempotent_resend off (default)
  auto alice = make_user("alice");

  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  ASSERT_TRUE(router->handle_access_request(*m2, 1010).has_value());
  EXPECT_FALSE(router->handle_access_request(*m2, 1020).has_value());
  EXPECT_EQ(router->stats().rejected_replay, 1u);
  EXPECT_EQ(router->stats().confirms_resent, 0u);
}

TEST_F(ReliabilityTest, ForgedVariantOfAcceptedRequestNotResent) {
  const ProtocolConfig config = idempotent_config();
  auto router = make_router(1, config);
  auto alice = make_user("alice", config);

  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  ASSERT_TRUE(router->handle_access_request(*m2, 1010).has_value());

  // Same session id (g_rj, g_rR) but different bytes: the resend cache is
  // keyed by the full wire hash, so a forgery is a plain replay rejection.
  AccessRequest forged = *m2;
  forged.ts2 += 1;
  EXPECT_FALSE(router->handle_access_request(forged, 1020).has_value());
  EXPECT_EQ(router->stats().rejected_replay, 1u);
  EXPECT_EQ(router->stats().confirms_resent, 0u);
}

TEST_F(ReliabilityTest, DuplicateConfirmDeliveryIsNoOp) {
  auto router = make_router(1);
  auto alice = make_user("alice");
  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto outcome = router->handle_access_request(*m2, 1010);
  ASSERT_TRUE(outcome.has_value());

  ASSERT_TRUE(alice->process_access_confirm(outcome->confirm).has_value());
  // The pending entry was consumed: a radio-duplicated M.3 changes nothing.
  EXPECT_FALSE(alice->process_access_confirm(outcome->confirm).has_value());
  EXPECT_EQ(alice->stats().sessions_established, 1u);
  EXPECT_EQ(alice->pending_access_size(), 0u);
}

TEST_F(ReliabilityTest, ReplayCacheBoundedByFifoEviction) {
  ProtocolConfig config;
  config.replay_cache_cap = 4;
  auto router = make_router(1, config);

  for (int i = 0; i < 7; ++i) {
    auto user = make_user("u" + std::to_string(i), config);
    const BeaconMessage beacon = router->make_beacon(1000 + i);
    auto m2 = user->process_beacon(beacon, 1000 + i);
    ASSERT_TRUE(m2.has_value());
    ASSERT_TRUE(router->handle_access_request(*m2, 1005 + i).has_value());
    EXPECT_LE(router->replay_cache_size(), 4u);
  }
  EXPECT_EQ(router->stats().accepted, 7u);
}

TEST_F(ReliabilityTest, ClosedSessionStaysClosedToReplays) {
  auto router = make_router(1);
  auto alice = make_user("alice");
  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto outcome = router->handle_access_request(*m2, 1010);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_EQ(router->session_count(), 1u);

  EXPECT_TRUE(router->close_session(outcome->session_id));
  EXPECT_EQ(router->session_count(), 0u);
  EXPECT_FALSE(router->close_session(outcome->session_id));
  EXPECT_EQ(router->session(outcome->session_id), nullptr);
  // The replay cache survives the close: the spent M.2 cannot resurrect
  // the session it once established.
  EXPECT_FALSE(router->handle_access_request(*m2, 1020).has_value());
  EXPECT_EQ(router->stats().rejected_replay, 1u);
  EXPECT_EQ(router->session_count(), 0u);
}

// --- peer-side idempotent resend (M~.1 -> cached M~.2, M~.2 -> M~.3) ------

TEST_F(ReliabilityTest, DuplicatePeerHelloAnsweredFromCache) {
  const ProtocolConfig config = idempotent_config();
  auto alice = make_user("alice", config);
  auto bob = make_user("bob", config);
  const curve::G1 g = curve::Bn254::get().g1_gen;

  const PeerHello hello = alice->make_peer_hello(g, 1000);
  auto first = bob->process_peer_hello(hello, 1001);
  ASSERT_TRUE(first.has_value());
  const std::size_t pending_after_first = bob->pending_peer_size();

  auto second =
      bob->process_peer_hello(PeerHello::from_bytes(hello.to_bytes()), 1002);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->to_bytes(), first->to_bytes());  // byte-identical resend
  EXPECT_EQ(bob->pending_peer_size(), pending_after_first);  // no new r_l
  EXPECT_EQ(bob->stats().duplicate_hellos, 1u);
}

TEST_F(ReliabilityTest, StrictModeMintsFreshReplyPerHello) {
  auto alice = make_user("alice");
  auto bob = make_user("bob");
  const curve::G1 g = curve::Bn254::get().g1_gen;

  const PeerHello hello = alice->make_peer_hello(g, 1000);
  auto first = bob->process_peer_hello(hello, 1001);
  auto second = bob->process_peer_hello(hello, 1002);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->to_bytes(), second->to_bytes());  // fresh r_l each time
  EXPECT_EQ(bob->stats().duplicate_hellos, 0u);
}

TEST_F(ReliabilityTest, BatchedDuplicateHellosMatchSequential) {
  // Two bit-identical worlds built from the same seeds, differing only in
  // verify_threads: the pooled batch path must produce byte-for-byte the
  // same replies, cache hits, and pending state as the sequential one.
  struct Run {
    std::vector<Bytes> replies;
    std::uint64_t duplicate_hellos;
    std::size_t pending;
  };
  const auto run = [](unsigned verify_threads) {
    ProtocolConfig config = idempotent_config();
    config.verify_threads = verify_threads;
    NetworkOperator no(crypto::Drbg::from_string("rel-batch-no"));
    TrustedThirdParty ttp;
    GroupManager gm = no.register_group("G", 8, ttp);
    const auto mk = [&](const std::string& uid) {
      auto u = std::make_unique<User>(uid, no.params(),
                                      crypto::Drbg::from_string(uid), config);
      u->complete_enrollment(gm.enroll(uid, ttp));
      return u;
    };
    auto alice = mk("alice");
    auto bob = mk("bob");
    const curve::G1 g = curve::Bn254::get().g1_gen;

    // Two distinct hellos plus an in-batch byte-identical duplicate of the
    // first: the duplicate must be served from the cache its first copy
    // populated earlier in the same batch.
    const PeerHello h1 = alice->make_peer_hello(g, 1000);
    const PeerHello h2 = alice->make_peer_hello(g, 1000);
    const std::vector<PeerHello> batch{h1, h2,
                                       PeerHello::from_bytes(h1.to_bytes())};
    Run out;
    for (const auto& reply : bob->process_peer_hellos(batch, 1001)) {
      EXPECT_TRUE(reply.has_value());
      out.replies.push_back(reply.has_value() ? reply->to_bytes() : Bytes{});
    }
    out.duplicate_hellos = bob->stats().duplicate_hellos;
    out.pending = bob->pending_peer_size();
    return out;
  };

  const Run seq = run(0);
  const Run pool = run(4);
  ASSERT_EQ(seq.replies.size(), 3u);
  EXPECT_EQ(seq.replies, pool.replies);
  EXPECT_EQ(seq.replies[2], seq.replies[0]);  // in-batch cache hit
  EXPECT_EQ(seq.duplicate_hellos, 1u);
  EXPECT_EQ(pool.duplicate_hellos, 1u);
  EXPECT_EQ(seq.pending, pool.pending);
}

TEST_F(ReliabilityTest, DuplicateReplyYieldsCachedPeerConfirm) {
  const ProtocolConfig config = idempotent_config();
  auto alice = make_user("alice", config);
  auto bob = make_user("bob", config);
  const curve::G1 g = curve::Bn254::get().g1_gen;

  const PeerHello hello = alice->make_peer_hello(g, 1000);
  auto reply = bob->process_peer_hello(hello, 1001);
  ASSERT_TRUE(reply.has_value());
  auto established = alice->process_peer_reply(*reply, 1002);
  ASSERT_TRUE(established.has_value());

  // Bob's retransmitted M~.2 (he never saw the M~.3) pulls the cached,
  // byte-identical confirmation back out of Alice without new state.
  EXPECT_FALSE(alice->process_peer_reply(*reply, 1003).has_value());
  auto cached = alice->cached_peer_confirm(*reply);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->to_bytes(), established->confirm.to_bytes());
  EXPECT_EQ(alice->stats().duplicate_replies, 1u);
  EXPECT_EQ(alice->stats().peer_sessions_established, 1u);

  // Bob completes from the resent confirm; a duplicate of it is a no-op.
  ASSERT_TRUE(bob->process_peer_confirm(*cached).has_value());
  EXPECT_FALSE(bob->process_peer_confirm(*cached).has_value());
  EXPECT_EQ(bob->stats().peer_sessions_established, 1u);
}

TEST_F(ReliabilityTest, CachedPeerConfirmAbsentInStrictMode) {
  auto alice = make_user("alice");
  auto bob = make_user("bob");
  const curve::G1 g = curve::Bn254::get().g1_gen;

  const PeerHello hello = alice->make_peer_hello(g, 1000);
  auto reply = bob->process_peer_hello(hello, 1001);
  ASSERT_TRUE(reply.has_value());
  ASSERT_TRUE(alice->process_peer_reply(*reply, 1002).has_value());
  EXPECT_FALSE(alice->cached_peer_confirm(*reply).has_value());
}

// --- TTL + cap garbage collection -----------------------------------------

TEST_F(ReliabilityTest, PendingHandshakeStateExpiresByTtl) {
  ProtocolConfig config;
  config.pending_ttl_ms = 1000;
  auto router = make_router(1, config);
  auto alice = make_user("alice", config);

  const BeaconMessage beacon = router->make_beacon(1000);
  ASSERT_TRUE(alice->process_beacon(beacon, 1000).has_value());
  const curve::G1 g = curve::Bn254::get().g1_gen;
  (void)alice->make_peer_hello(g, 1000);
  EXPECT_EQ(alice->pending_access_size(), 1u);
  EXPECT_EQ(alice->pending_peer_size(), 1u);

  // Within the TTL nothing is reaped; past it, everything abandoned goes.
  EXPECT_EQ(alice->reap_pending(1500), 0u);
  EXPECT_EQ(alice->reap_pending(2001), 2u);
  EXPECT_EQ(alice->pending_access_size(), 0u);
  EXPECT_EQ(alice->pending_peer_size(), 0u);
  EXPECT_EQ(alice->stats().pending_expired, 2u);
}

TEST_F(ReliabilityTest, ExpiredHandshakeCannotComplete) {
  ProtocolConfig config;
  config.pending_ttl_ms = 1000;
  config.replay_window_ms = 60'000;  // isolate the TTL from freshness gates
  auto router = make_router(1, config);
  auto alice = make_user("alice", config);

  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto outcome = router->handle_access_request(*m2, 1010);
  ASSERT_TRUE(outcome.has_value());

  // The user's pending DH share died of old age before M.3 arrived.
  alice->reap_pending(5000);
  EXPECT_FALSE(alice->process_access_confirm(outcome->confirm).has_value());
}

TEST_F(ReliabilityTest, PendingCapEvictsOldestFirst) {
  ProtocolConfig config;
  config.pending_cap = 4;
  auto alice = make_user("alice", config);
  const curve::G1 g = curve::Bn254::get().g1_gen;

  for (int i = 0; i < 10; ++i) {
    (void)alice->make_peer_hello(g, 1000 + i);
    EXPECT_LE(alice->pending_peer_size(), 4u);
  }
  EXPECT_EQ(alice->stats().pending_evicted, 6u);
}

TEST_F(ReliabilityTest, ResendCachesHonorTtlAndCap) {
  ProtocolConfig config = idempotent_config();
  config.pending_ttl_ms = 1000;
  config.pending_cap = 4;
  auto alice = make_user("alice", config);
  auto bob = make_user("bob", config);
  const curve::G1 g = curve::Bn254::get().g1_gen;

  for (int i = 0; i < 8; ++i) {
    const PeerHello hello = alice->make_peer_hello(g, 1000 + i);
    ASSERT_TRUE(bob->process_peer_hello(hello, 1000 + i).has_value());
    EXPECT_LE(bob->resend_cache_size(), 4u);
  }
  EXPECT_GT(bob->resend_cache_size(), 0u);
  // TTL: a reap far in the future clears the caches entirely.
  bob->reap_pending(60'000);
  EXPECT_EQ(bob->resend_cache_size(), 0u);
}

// --- sequence-space exhaustion --------------------------------------------

TEST_F(ReliabilityTest, TrySealRefusesGracefullyAtExhaustion) {
  auto router = make_router(1);
  auto alice = make_user("alice");
  const BeaconMessage beacon = router->make_beacon(1000);
  auto m2 = alice->process_beacon(beacon, 1000);
  ASSERT_TRUE(m2.has_value());
  auto outcome = router->handle_access_request(*m2, 1010);
  ASSERT_TRUE(outcome.has_value());
  auto session = alice->process_access_confirm(outcome->confirm);
  ASSERT_TRUE(session.has_value());

  ASSERT_TRUE(session->try_seal(as_bytes("fine")).has_value());
  session->advance_send_seq(Session::kSeqExhausted);
  EXPECT_TRUE(session->seq_exhausted());
  // The data path refuses without throwing — the caller's rekey trigger.
  EXPECT_FALSE(session->try_seal(as_bytes("one too many")).has_value());
  // The throwing wrapper still treats it as a hard error.
  EXPECT_THROW(session->seal(as_bytes("one too many")), Error);
}

}  // namespace
}  // namespace peace::proto
