#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

namespace peace::crypto {
namespace {

std::string hash_hex(std::string_view msg) {
  return to_hex(Sha256::hash(as_bytes(msg)));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  auto d = h.finalize();
  EXPECT_EQ(to_hex({d.data(), d.size()}),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries at awkward offsets. ";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(as_bytes(std::string_view(msg).substr(0, split)));
    h.update(as_bytes(std::string_view(msg).substr(split)));
    auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::hash(as_bytes(msg)));
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55, 56, 63, 64, 65 bytes cross the padding edge cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes msg(n, 0x5a);
    Sha256 h;
    h.update(msg);
    auto d = h.finalize();
    EXPECT_EQ(Bytes(d.begin(), d.end()), Sha256::hash(msg)) << n;
  }
}

TEST(Sha256, ConcatHelper) {
  EXPECT_EQ(sha256_concat(as_bytes("ab"), as_bytes("c")),
            Sha256::hash(as_bytes("abc")));
}

}  // namespace
}  // namespace peace::crypto
