// Randomized batch verification (docs/CRYPTO.md §4): the batched
// accept/reject vector must be bit-identical to sequential verify_proof on
// every batch — empty, singleton, all-good, all-bad, mixed, duplicated, and
// adversarial batches crafted so the forgeries would cancel in an
// UNrandomized combined check. Also the protocol-level contract: routers
// and users running with batch_verify on behave exactly like strict
// per-signature endpoints.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "groupsig/groupsig.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace::groupsig {
namespace {

class BatchVerifyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  BatchVerifyTest()
      : rng_(crypto::Drbg::from_string("batch-verify-test")),
        issuer_(Issuer::create(rng_)),
        grp_(issuer_.new_group_secret(rng_)),
        alice_(issuer_.issue(grp_, rng_)),
        bob_(issuer_.issue(grp_, rng_)),
        pgpk_(issuer_.gpk()),
        salt_(rng_.bytes(32)) {}

  /// n signatures over distinct messages, alternating signers.
  void make_batch(std::size_t n) {
    messages_.clear();
    sigs_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      messages_.push_back(to_bytes("batch-msg-" + std::to_string(i)));
      sigs_.push_back(sign(issuer_.gpk(), i % 2 ? bob_ : alice_,
                           messages_.back(), rng_));
    }
  }

  std::vector<BatchItem> items() const {
    std::vector<BatchItem> out(sigs_.size());
    for (std::size_t i = 0; i < sigs_.size(); ++i)
      out[i] = {messages_[i], &sigs_[i]};
    return out;
  }

  /// The ground truth the batch must reproduce exactly.
  std::vector<char> sequential() const {
    std::vector<char> out(sigs_.size());
    for (std::size_t i = 0; i < sigs_.size(); ++i)
      out[i] = verify_proof(pgpk_, messages_[i], sigs_[i]) ? 1 : 0;
    return out;
  }

  void expect_batch_matches_sequential() {
    const std::vector<char> expect = sequential();
    const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
      EXPECT_EQ(static_cast<bool>(got[i]), static_cast<bool>(expect[i])) << i;
  }

  crypto::Drbg rng_;
  Issuer issuer_;
  Fr grp_;
  MemberKey alice_, bob_;
  PreparedGroupPublicKey pgpk_;
  Bytes salt_;
  std::vector<Bytes> messages_;
  std::vector<Signature> sigs_;
};

TEST_F(BatchVerifyTest, EmptyBatch) {
  EXPECT_TRUE(batch_verify_proof(pgpk_, {}, salt_).empty());
}

TEST_F(BatchVerifyTest, SingletonGoodAndBad) {
  // N=1 runs the exact sequential leaf — no randomization involved.
  make_batch(1);
  expect_batch_matches_sequential();
  EXPECT_EQ(batch_verify_proof(pgpk_, items(), salt_)[0], 1);
  sigs_[0].s_x = sigs_[0].s_x + Fr::one();
  expect_batch_matches_sequential();
  EXPECT_EQ(batch_verify_proof(pgpk_, items(), salt_)[0], 0);
}

TEST_F(BatchVerifyTest, AllGoodSingleFinalExponentiation) {
  make_batch(8);
  OpCounters ops;
  const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_, &ops);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 1) << i;
  expect_batch_matches_sequential();
  // The whole all-good batch runs ONE fused Miller accumulation (counted as
  // its 2 constituent pairings) and one final exponentiation — versus
  // 2 pairings per signature sequentially.
  EXPECT_EQ(ops.pairings, 2u);
}

TEST_F(BatchVerifyTest, AllBadAttributedIndividually) {
  make_batch(6);
  for (Signature& s : sigs_) s.s_alpha = s.s_alpha + Fr::one();
  const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 0) << i;
  expect_batch_matches_sequential();
}

TEST_F(BatchVerifyTest, OneBadFoundByBisection) {
  for (const std::size_t bad : {0u, 3u, 7u}) {
    make_batch(8);
    sigs_[bad].s_delta = sigs_[bad].s_delta + Fr::one();
    const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_);
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(static_cast<bool>(got[i]), i != bad) << i;
    expect_batch_matches_sequential();
  }
}

TEST_F(BatchVerifyTest, ManyBadMixed) {
  make_batch(16);
  for (const std::size_t bad : {1u, 6u, 7u, 12u})
    sigs_[bad].s_x = sigs_[bad].s_x + Fr::one();
  expect_batch_matches_sequential();
}

TEST_F(BatchVerifyTest, DuplicatesInOneBatch) {
  // The same (message, signature) pair several times in one batch — the
  // radio duplicates frames, so verifiers genuinely see this.
  make_batch(3);
  messages_.push_back(messages_[1]);
  sigs_.push_back(sigs_[1]);
  messages_.push_back(messages_[1]);
  sigs_.push_back(sigs_[1]);
  expect_batch_matches_sequential();
  // And duplicated BAD signatures: every copy rejected.
  sigs_[1].nonce = sigs_[1].nonce + Fr::one();
  sigs_[3] = sigs_[1];
  sigs_[4] = sigs_[1];
  const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 0);
  EXPECT_EQ(got[4], 0);
  expect_batch_matches_sequential();
}

TEST_F(BatchVerifyTest, FormatRejectsNeverEnterTheFold) {
  // An R2 outside the cyclotomic subgroup (or an infinity T1) is rejected
  // on format, exactly like sequential verify_proof, and must not poison
  // the combined checks for its neighbours.
  make_batch(4);
  sigs_[2].t1 = G1::infinity();
  const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 0);
  EXPECT_EQ(got[3], 1);
  expect_batch_matches_sequential();
}

TEST_F(BatchVerifyTest, CraftedCancellationPairRejected) {
  // THE attack randomization exists for. Two copies of one valid signature,
  // responses tampered by +eps and -eps: each copy is individually invalid,
  // but because the bases, challenge, and commitments are shared, their
  // residuals in every UNrandomized combined check sum to exactly zero —
  // an unweighted batcher would accept both. s_alpha tampering exercises
  // all three folds at once (Eq.1's G1 sum, Eq.4's G2 sum, Eq.2's GT
  // product); s_delta tampering exercises the G1 and GT folds.
  const Fr eps = Fr::from_u64(12345);
  for (const bool tamper_alpha : {true, false}) {
    make_batch(4);  // two honest bystanders around the crafted pair
    messages_.insert(messages_.begin() + 1, messages_[0]);
    sigs_.insert(sigs_.begin() + 1, sigs_[0]);
    if (tamper_alpha) {
      sigs_[0].s_alpha = sigs_[0].s_alpha + eps;
      sigs_[1].s_alpha = sigs_[1].s_alpha - eps;
    } else {
      sigs_[0].s_delta = sigs_[0].s_delta + eps;
      sigs_[1].s_delta = sigs_[1].s_delta - eps;
    }
    // Both crafted copies individually invalid, bystanders fine.
    EXPECT_FALSE(verify_proof(pgpk_, messages_[0], sigs_[0]));
    EXPECT_FALSE(verify_proof(pgpk_, messages_[1], sigs_[1]));
    const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt_);
    EXPECT_EQ(got[0], 0) << tamper_alpha;
    EXPECT_EQ(got[1], 0) << tamper_alpha;
    EXPECT_EQ(got[2], 1);
    EXPECT_EQ(got[3], 1);
    EXPECT_EQ(got[4], 1);
    expect_batch_matches_sequential();
  }
}

TEST_F(BatchVerifyTest, CraftedCancellationManySalts) {
  // The crafted pair must die under EVERY salt (the defeat is structural —
  // per-item randomizers — not a lucky weight draw).
  make_batch(2);
  messages_[1] = messages_[0];
  sigs_[1] = sigs_[0];
  const Fr eps = Fr::from_u64(99991);
  sigs_[0].s_alpha = sigs_[0].s_alpha + eps;
  sigs_[1].s_alpha = sigs_[1].s_alpha - eps;
  for (int i = 0; i < 8; ++i) {
    const Bytes salt = rng_.bytes(32);
    const std::vector<char> got = batch_verify_proof(pgpk_, items(), salt);
    EXPECT_EQ(got[0], 0) << i;
    EXPECT_EQ(got[1], 0) << i;
  }
}

TEST_F(BatchVerifyTest, DeterministicUnderFixedSalt) {
  make_batch(5);
  sigs_[2].s_x = sigs_[2].s_x + Fr::one();
  OpCounters ops1, ops2;
  const auto a = batch_verify_proof(pgpk_, items(), salt_, &ops1);
  const auto b = batch_verify_proof(pgpk_, items(), salt_, &ops2);
  EXPECT_EQ(a, b);
  // Same salt + same batch => same randomizers => same bisection path and
  // thus identical operation counts.
  EXPECT_EQ(ops1.pairings, ops2.pairings);
  EXPECT_EQ(ops1.total_exp(), ops2.total_exp());
}

TEST_F(BatchVerifyTest, PreparePhaseIsSplittable) {
  // prepare() on a subset of indices, finalize() picking up the rest — the
  // router's pooled pipeline does exactly this.
  make_batch(6);
  sigs_[4].s_alpha = sigs_[4].s_alpha + Fr::one();
  const std::vector<BatchItem> batch = items();
  BatchVerifier verifier(pgpk_, batch, salt_);
  verifier.prepare(1);
  verifier.prepare(3);
  const std::vector<char>& got = verifier.finalize();
  expect_batch_matches_sequential();
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(static_cast<bool>(got[i]), i != 4) << i;
}

// --- protocol level -------------------------------------------------------

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

class BatchProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }

  BatchProtocolTest() : no_(crypto::Drbg::from_string("bp-no")) {
    gm_ = std::make_unique<proto::GroupManager>(
        no_.register_group("G", 16, ttp_));
    provision_ = std::make_unique<proto::NetworkOperator::RouterProvision>(
        no_.provision_router(1, kFarFuture));
  }

  std::unique_ptr<proto::MeshRouter> make_router(proto::ProtocolConfig cfg) {
    // One shared provisioned identity and one shared rng seed: the router
    // clones differ ONLY in cfg, so their wire behaviour is comparable
    // byte for byte.
    auto router = std::make_unique<proto::MeshRouter>(
        1, provision_->keypair, provision_->certificate, no_.params(),
        crypto::Drbg::from_string("bp-router"), cfg);
    router->install_revocation_lists(no_.current_crl(), no_.current_url());
    return router;
  }

  std::unique_ptr<proto::User> make_user(const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no_.params(), crypto::Drbg::from_string(uid));
    if (enrollments_.find(uid) == enrollments_.end())
      enrollments_.emplace(uid, gm_->enroll(uid, ttp_));
    user->complete_enrollment(enrollments_.at(uid));
    return user;
  }

  proto::NetworkOperator no_;
  proto::TrustedThirdParty ttp_;
  std::unique_ptr<proto::GroupManager> gm_;
  std::unique_ptr<proto::NetworkOperator::RouterProvision> provision_;
  std::map<std::string, proto::GroupManager::Enrollment> enrollments_;
};

TEST_F(BatchProtocolTest, RouterBatchMatchesStrictModeWithRevokedSigner) {
  // A revoked signer hiding inside an otherwise-good batch: the batched
  // proof accepts its (valid) signature, and the per-signature URL scan
  // must still catch it — outcome identical to strict mode.
  auto alice = make_user("alice");
  auto bob = make_user("bob");
  auto mallory = make_user("mallory");
  no_.revoke_user_key(enrollments_.at("mallory").index, 900);

  proto::ProtocolConfig strict_cfg;
  strict_cfg.batch_verify = false;
  auto batched = make_router({});  // batch_verify defaults to on
  auto strict = make_router(strict_cfg);

  const proto::BeaconMessage beacon = batched->make_beacon(1000);
  ASSERT_EQ(beacon.to_bytes(), strict->make_beacon(1000).to_bytes());

  std::vector<proto::AccessRequest> batch;
  for (proto::User* u : {alice.get(), mallory.get(), bob.get()}) {
    auto m2 = u->process_beacon(beacon, 1001);
    ASSERT_TRUE(m2.has_value()) << u->uid();
    batch.push_back(*m2);
  }
  // A tampered request (its own session id, so it truly enters the batch)
  // rides along: rejected by the proof in both modes.
  auto trent = make_user("trent");
  auto forged = trent->process_beacon(beacon, 1001);
  ASSERT_TRUE(forged.has_value());
  forged->signature.s_x = forged->signature.s_x + Fr::one();
  batch.push_back(*forged);

  const auto got = batched->handle_access_requests(batch, 1002);
  const auto expect = strict->handle_access_requests(batch, 1002);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].has_value(), expect[i].has_value()) << i;
    if (got[i].has_value())
      EXPECT_EQ(got[i]->confirm.to_bytes(), expect[i]->confirm.to_bytes()) << i;
  }
  ASSERT_TRUE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());  // mallory: valid proof, revoked token
  ASSERT_TRUE(got[2].has_value());
  EXPECT_FALSE(got[3].has_value());  // tampered payload
  EXPECT_EQ(batched->stats().rejected_revoked, 1u);
  EXPECT_EQ(batched->stats().rejected_bad_signature, 1u);
  EXPECT_EQ(strict->stats().rejected_revoked, 1u);
  EXPECT_EQ(batched->stats().verify_batches, 1u);
  EXPECT_EQ(batched->stats().batched_requests, batch.size());
  EXPECT_EQ(strict->stats().verify_batches, 0u);
}

TEST_F(BatchProtocolTest, PooledBatchedRouterMatchesStrictUnderDuplicates) {
  // Pool + batch verification + fault-injected duplicate frames: the
  // combined pipeline must still be bit-identical to the strict sequential
  // router (duplicates of one M.2 are deferred to the in-order apply pass,
  // where only the first copy establishes the session).
  auto alice = make_user("alice");
  auto bob = make_user("bob");

  proto::ProtocolConfig pooled_cfg;
  pooled_cfg.verify_threads = 4;  // batch_verify stays default-on
  proto::ProtocolConfig strict_cfg;
  strict_cfg.batch_verify = false;
  auto pooled = make_router(pooled_cfg);
  auto strict = make_router(strict_cfg);

  const proto::BeaconMessage beacon = pooled->make_beacon(1000);
  ASSERT_EQ(beacon.to_bytes(), strict->make_beacon(1000).to_bytes());

  std::vector<proto::AccessRequest> batch;
  auto a2 = alice->process_beacon(beacon, 1001);
  auto b2 = bob->process_beacon(beacon, 1001);
  ASSERT_TRUE(a2.has_value());
  ASSERT_TRUE(b2.has_value());
  // The radio duplicated alice's frame twice, interleaved with bob's.
  batch.push_back(*a2);
  batch.push_back(*b2);
  batch.push_back(*a2);
  batch.push_back(*a2);

  const auto got = pooled->handle_access_requests(batch, 1002);
  const auto expect = strict->handle_access_requests(batch, 1002);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].has_value(), expect[i].has_value()) << i;
    if (got[i].has_value())
      EXPECT_EQ(got[i]->confirm.to_bytes(), expect[i]->confirm.to_bytes()) << i;
  }
  ASSERT_TRUE(got[0].has_value());
  ASSERT_TRUE(got[1].has_value());
  EXPECT_FALSE(got[2].has_value());  // replayed duplicates
  EXPECT_FALSE(got[3].has_value());
  EXPECT_EQ(pooled->session_count(), strict->session_count());
  EXPECT_EQ(pooled->stats().rejected_replay, strict->stats().rejected_replay);
}

}  // namespace
}  // namespace peace::groupsig
