#include "curve/hash_to_curve.hpp"

#include <gtest/gtest.h>

#include "curve/pairing.hpp"

namespace peace::curve {
namespace {

class HashToCurveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
};

TEST_F(HashToCurveTest, FrDeterministic) {
  EXPECT_EQ(hash_to_fr("d", as_bytes("m")), hash_to_fr("d", as_bytes("m")));
  EXPECT_NE(hash_to_fr("d", as_bytes("m")), hash_to_fr("d", as_bytes("n")));
  EXPECT_NE(hash_to_fr("d1", as_bytes("m")), hash_to_fr("d2", as_bytes("m")));
}

TEST_F(HashToCurveTest, G1OnCurveAndDeterministic) {
  const G1 p = hash_to_g1("test", as_bytes("message"));
  EXPECT_TRUE(p.is_on_curve());
  EXPECT_FALSE(p.is_infinity());
  EXPECT_EQ(p, hash_to_g1("test", as_bytes("message")));
  EXPECT_NE(p, hash_to_g1("test", as_bytes("other")));
}

TEST_F(HashToCurveTest, G1InPrimeOrderSubgroup) {
  const G1 p = hash_to_g1("test", as_bytes("subgroup"));
  EXPECT_TRUE((p * Bn254::get().r).is_infinity());
}

TEST_F(HashToCurveTest, G2OnCurveInSubgroup) {
  const G2 q = hash_to_g2("test", as_bytes("message"));
  EXPECT_TRUE(q.is_on_curve());
  EXPECT_FALSE(q.is_infinity());
  EXPECT_TRUE((q * Bn254::get().r).is_infinity());
  EXPECT_EQ(q, hash_to_g2("test", as_bytes("message")));
}

TEST_F(HashToCurveTest, ManyInputsAllValid) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    Bytes msg = {static_cast<std::uint8_t>(i)};
    const G1 p = hash_to_g1("sweep", msg);
    EXPECT_TRUE(p.is_on_curve());
    const G2 q = hash_to_g2("sweep", msg);
    EXPECT_TRUE(q.is_on_curve());
    EXPECT_TRUE((q * Bn254::get().r).is_infinity());
  }
}

TEST_F(HashToCurveTest, DistinctInputsDistinctPoints) {
  const G1 a = hash_to_g1("x", as_bytes("1"));
  const G1 b = hash_to_g1("x", as_bytes("2"));
  EXPECT_NE(a, b);
}

TEST_F(HashToCurveTest, HashedPointsPairNontrivially) {
  const G1 p = hash_to_g1("pair", as_bytes("p"));
  const G2 q = hash_to_g2("pair", as_bytes("q"));
  EXPECT_FALSE(pairing(p, q).is_one());
}

TEST_F(HashToCurveTest, SignatureBasesAllDistinct) {
  const SignatureBases b = hash_to_bases(as_bytes("seed"));
  EXPECT_TRUE(b.u.is_on_curve());
  EXPECT_TRUE(b.v.is_on_curve());
  EXPECT_TRUE(b.v_hat.is_on_curve());
  EXPECT_NE(b.u, b.v);
  const SignatureBases b2 = hash_to_bases(as_bytes("seed2"));
  EXPECT_NE(b.u, b2.u);
  EXPECT_NE(b.v, b2.v);
  // Deterministic.
  const SignatureBases b3 = hash_to_bases(as_bytes("seed"));
  EXPECT_EQ(b.u, b3.u);
  EXPECT_EQ(b.v, b3.v);
  EXPECT_EQ(b.v_hat, b3.v_hat);
}

}  // namespace
}  // namespace peace::curve
