#include "peace/puzzle.hpp"

#include <gtest/gtest.h>

namespace peace::proto {
namespace {

TEST(Puzzle, SolveAndVerify) {
  const auto challenge = make_puzzle(to_bytes("nonce-1"), 8);
  const auto solution = solve_puzzle(challenge, as_bytes("client-dh-share"));
  EXPECT_TRUE(verify_puzzle(challenge, solution, as_bytes("client-dh-share")));
}

TEST(Puzzle, ZeroDifficultyTrivial) {
  const auto challenge = make_puzzle(to_bytes("n"), 0);
  const auto solution = solve_puzzle(challenge, as_bytes("c"));
  EXPECT_EQ(solution.solution, 0u);
  EXPECT_TRUE(verify_puzzle(challenge, solution, as_bytes("c")));
}

TEST(Puzzle, SolutionBoundToClient) {
  const auto challenge = make_puzzle(to_bytes("nonce"), 8);
  const auto solution = solve_puzzle(challenge, as_bytes("client-a"));
  EXPECT_FALSE(verify_puzzle(challenge, solution, as_bytes("client-b")));
}

TEST(Puzzle, SolutionBoundToNonce) {
  const auto c1 = make_puzzle(to_bytes("nonce-1"), 8);
  const auto c2 = make_puzzle(to_bytes("nonce-2"), 8);
  const auto s1 = solve_puzzle(c1, as_bytes("c"));
  EXPECT_FALSE(verify_puzzle(c2, s1, as_bytes("c")));
}

TEST(Puzzle, WrongSolutionRejected) {
  const auto challenge = make_puzzle(to_bytes("n"), 12);
  auto solution = solve_puzzle(challenge, as_bytes("c"));
  solution.solution += 1;
  // Overwhelmingly unlikely to also be a solution.
  EXPECT_FALSE(verify_puzzle(challenge, solution, as_bytes("c")));
}

TEST(Puzzle, DifficultyCapEnforced) {
  EXPECT_THROW(make_puzzle(to_bytes("n"), 41), Error);
  EXPECT_NO_THROW(make_puzzle(to_bytes("n"), 20));
}

TEST(Puzzle, ExpectedWorkDoubles) {
  EXPECT_DOUBLE_EQ(puzzle_expected_work(0), 1.0);
  EXPECT_DOUBLE_EQ(puzzle_expected_work(10), 1024.0);
  EXPECT_DOUBLE_EQ(puzzle_expected_work(11) / puzzle_expected_work(10), 2.0);
}

TEST(Puzzle, SerializationRoundTrip) {
  const auto challenge = make_puzzle(to_bytes("nonce-xyz"), 14);
  EXPECT_EQ(PuzzleChallenge::from_bytes(challenge.to_bytes()), challenge);
  const PuzzleSolution sol{to_bytes("nonce-xyz"), 123456789};
  EXPECT_EQ(PuzzleSolution::from_bytes(sol.to_bytes()), sol);
}

class PuzzleWork : public ::testing::TestWithParam<int> {};

TEST_P(PuzzleWork, HigherDifficultyMoreIterations) {
  // The solver's found index is a proxy for work; across a few nonces the
  // average index should grow with difficulty (geometric with mean 2^d).
  const int d = GetParam();
  double total = 0;
  for (int i = 0; i < 8; ++i) {
    const auto challenge =
        make_puzzle(to_bytes("nonce-" + std::to_string(i)), static_cast<std::uint8_t>(d));
    total += static_cast<double>(
        solve_puzzle(challenge, as_bytes("client")).solution);
  }
  const double mean = total / 8;
  // Loose sanity bounds: mean ~ 2^d.
  EXPECT_LT(mean, 40.0 * (1 << d));
  if (d >= 6) {
    EXPECT_GT(mean, (1 << d) / 40.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Difficulties, PuzzleWork, ::testing::Values(0, 4, 8, 10));

}  // namespace
}  // namespace peace::proto
