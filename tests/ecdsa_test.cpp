#include "curve/ecdsa.hpp"

#include <gtest/gtest.h>

namespace peace::curve {
namespace {

class EcdsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
  crypto::Drbg rng_ = crypto::Drbg::from_string("ecdsa-test");
};

TEST_F(EcdsaTest, SignVerifyRoundTrip) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  const auto sig = kp.sign(as_bytes("hello wmn"), rng_);
  EXPECT_TRUE(ecdsa_verify(kp.public_key(), as_bytes("hello wmn"), sig));
}

TEST_F(EcdsaTest, WrongMessageRejected) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  const auto sig = kp.sign(as_bytes("msg"), rng_);
  EXPECT_FALSE(ecdsa_verify(kp.public_key(), as_bytes("other"), sig));
}

TEST_F(EcdsaTest, WrongKeyRejected) {
  const EcdsaKeyPair kp1 = EcdsaKeyPair::generate(rng_);
  const EcdsaKeyPair kp2 = EcdsaKeyPair::generate(rng_);
  const auto sig = kp1.sign(as_bytes("msg"), rng_);
  EXPECT_FALSE(ecdsa_verify(kp2.public_key(), as_bytes("msg"), sig));
}

TEST_F(EcdsaTest, TamperedSignatureRejected) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  auto sig = kp.sign(as_bytes("msg"), rng_);
  sig.s = sig.s + Fr::one();
  EXPECT_FALSE(ecdsa_verify(kp.public_key(), as_bytes("msg"), sig));
}

TEST_F(EcdsaTest, ZeroComponentsRejected) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  EXPECT_FALSE(ecdsa_verify(kp.public_key(), as_bytes("m"),
                            {Fr::zero(), Fr::one()}));
  EXPECT_FALSE(ecdsa_verify(kp.public_key(), as_bytes("m"),
                            {Fr::one(), Fr::zero()}));
}

TEST_F(EcdsaTest, InfinityPublicKeyRejected) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  const auto sig = kp.sign(as_bytes("m"), rng_);
  EXPECT_FALSE(ecdsa_verify(G1::infinity(), as_bytes("m"), sig));
}

TEST_F(EcdsaTest, SerializationRoundTrip) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  const auto sig = kp.sign(as_bytes("m"), rng_);
  const Bytes b = sig.to_bytes();
  EXPECT_EQ(b.size(), kEcdsaSignatureSize);
  EXPECT_EQ(EcdsaSignature::from_bytes(b), sig);
  EXPECT_THROW(EcdsaSignature::from_bytes(Bytes(10, 0)), Error);
}

TEST_F(EcdsaTest, FromSecretReconstructsKey) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  const EcdsaKeyPair kp2 = EcdsaKeyPair::from_secret(kp.secret_key());
  EXPECT_EQ(kp.public_key(), kp2.public_key());
  EXPECT_THROW(EcdsaKeyPair::from_secret(Fr::zero()), Error);
}

TEST_F(EcdsaTest, SignaturesRandomized) {
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng_);
  const auto s1 = kp.sign(as_bytes("m"), rng_);
  const auto s2 = kp.sign(as_bytes("m"), rng_);
  EXPECT_FALSE(s1 == s2);
  EXPECT_TRUE(ecdsa_verify(kp.public_key(), as_bytes("m"), s1));
  EXPECT_TRUE(ecdsa_verify(kp.public_key(), as_bytes("m"), s2));
}

TEST_F(EcdsaTest, RandomFrNonZeroAndDistinct) {
  const Fr a = random_fr(rng_);
  const Fr b = random_fr(rng_);
  EXPECT_FALSE(a.is_zero());
  EXPECT_FALSE(a == b);
}

class EcdsaMany : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
};

TEST_P(EcdsaMany, RoundTripSweep) {
  crypto::Drbg rng = crypto::Drbg::from_string("ecdsa-sweep", GetParam());
  const EcdsaKeyPair kp = EcdsaKeyPair::generate(rng);
  const Bytes msg = rng.bytes(1 + GetParam() * 17);
  const auto sig = kp.sign(msg, rng);
  EXPECT_TRUE(ecdsa_verify(kp.public_key(), msg, sig));
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify(kp.public_key(), tampered, sig));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EcdsaMany, ::testing::Range(0, 8));

}  // namespace
}  // namespace peace::curve
