// The observability layer (docs/OBSERVABILITY.md): metrics registry
// semantics, histogram quantiles, span crypto-op attribution, export
// formats, the op-count API migration (curve::pairing_op_count /
// g2_prepared_count now read registry counters), and the neutrality +
// pooled-vs-sequential determinism contracts telemetry must keep.
#include <gtest/gtest.h>

#include <cstdio>

#include "curve/bn254.hpp"
#include "curve/pairing.hpp"
#include "obs/metrics.hpp"
#include "obs/sec_event.hpp"
#include "obs/trace.hpp"
#include "peace/entities.hpp"
#include "peace/metrics_export.hpp"
#include "peace/router.hpp"
#include "peace/user.hpp"

namespace peace {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::Registry;

class ObsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
  void TearDown() override {
    obs::enable(false);
    obs::Tracer::global().clear();
  }
};

TEST_F(ObsTest, CounterBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, RegistryHandlesAreStable) {
  Registry reg;
  Counter& a = reg.counter("x.a");
  Counter& same = reg.counter("x.a");
  EXPECT_EQ(&a, &same);
  // Creating more metrics must not move existing ones.
  for (int i = 0; i < 100; ++i)
    reg.counter("x.fill" + std::to_string(i)).add();
  EXPECT_EQ(&a, &reg.counter("x.a"));
  a.add(3);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);       // reset zeroes in place
  EXPECT_EQ(&a, &reg.counter("x.a"));  // identity survives reset
}

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
  EXPECT_EQ(Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_bound(4), 16u);
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  // 100 samples in (512, 1024], exactly one bucket.
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 100'000u);
  const double p50 = h.quantile(0.50);
  EXPECT_GT(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  // Quantiles are monotone in q.
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
  // A far-away tail sample moves p99's covering bucket, not p50's.
  for (int i = 0; i < 2; ++i) h.record(1'000'000);
  EXPECT_LE(h.quantile(0.50), 1024.0);
  EXPECT_GT(h.quantile(0.99), 512'000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(ObsTest, MetricsJsonShape) {
  Registry reg;
  reg.counter("a.count").add(5);
  reg.gauge("a.depth").set(-3);
  reg.histogram("a.lat_us").record(100);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\": \"peace.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"a.depth\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"a.lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"le_us\": 128"), std::string::npos);
}

TEST_F(ObsTest, OpCountApiReadsRegistry) {
  // Satellite 1: the bare globals are gone — the curve:: op-count API and
  // the registry counters are the same numbers, and Registry::reset gives
  // per-scope deltas.
  const auto& bn = curve::Bn254::get();
  Registry::global().reset();
  EXPECT_EQ(curve::pairing_op_count(), 0u);
  EXPECT_EQ(curve::g2_prepared_count(), 0u);
  (void)curve::pairing(bn.g1_gen, bn.g2_gen);
  EXPECT_EQ(curve::pairing_op_count(), 1u);
  EXPECT_EQ(Registry::global().counter("curve.pairings").value(), 1u);
  const curve::G2Prepared prep(bn.g2_gen);
  EXPECT_EQ(curve::g2_prepared_count(), 1u);
  EXPECT_EQ(Registry::global().counter("curve.g2_prepared_builds").value(),
            1u);
  // Infinity still skips the build, exactly as the old global counted.
  const curve::G2Prepared inf_prep(curve::G2::infinity());
  EXPECT_EQ(curve::g2_prepared_count(), 1u);
  EXPECT_GE(Registry::global().counter("curve.miller_loops").value(), 1u);
  EXPECT_GE(Registry::global().counter("curve.final_exps").value(), 1u);
}

#ifndef PEACE_OBS_DISABLED

TEST_F(ObsTest, SpanAttributesCryptoOps) {
  const auto& bn = curve::Bn254::get();
  obs::enable(true);
  obs::Tracer::global().clear();
  {
    obs::Span span("test.pairing_work", "test");
    (void)curve::pairing(bn.g1_gen, bn.g2_gen);
    (void)curve::pairing(bn.g1_gen, bn.g2_gen);
    span.arg("custom", 7);
  }
  const auto events = obs::Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  const obs::TraceEvent& e = events[0];
  EXPECT_STREQ(e.name, "test.pairing_work");
  EXPECT_EQ(e.ph, 'X');
  std::uint64_t pairings = 0, custom = 0;
  for (std::size_t i = 0; i < e.nargs; ++i) {
    if (std::string_view(e.args[i].key) == "pairings")
      pairings = e.args[i].value;
    if (std::string_view(e.args[i].key) == "custom") custom = e.args[i].value;
  }
  EXPECT_EQ(pairings, 2u);
  EXPECT_EQ(custom, 7u);
}

TEST_F(ObsTest, SpansRecordNothingWhenDisabled) {
  const auto& bn = curve::Bn254::get();
  obs::Tracer::global().clear();
  ASSERT_FALSE(obs::enabled());
  {
    obs::Span span("test.disabled", "test");
    EXPECT_FALSE(span.active());
    (void)curve::pairing(bn.g1_gen, bn.g2_gen);
  }
  EXPECT_EQ(obs::Tracer::global().event_count(), 0u);
}

TEST_F(ObsTest, ExportFormats) {
  obs::enable(true);
  obs::Tracer::global().clear();
  { obs::Span span("test.export", "test"); }
  obs::Tracer::global().instant_at("test.instant", "test", 1234,
                                   {{"k", 42}});
  obs::Tracer::global().async_begin("test.async", "test", 9, 1000);
  obs::Tracer::global().async_end("test.async", "test", 9, 2000);
  obs::enable(false);

  const std::string chrome = obs::Tracer::global().chrome_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\": \"test.export\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_NE(chrome.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(chrome.find("\"args\": {\"k\": 42}"), std::string::npos);
  // Both clock tracks are named.
  EXPECT_NE(chrome.find("wall-clock"), std::string::npos);
  EXPECT_NE(chrome.find("sim-time"), std::string::npos);

  const std::string jsonl = obs::Tracer::global().jsonl();
  std::size_t lines = 0;
  for (const char c : jsonl) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, obs::Tracer::global().event_count());
}

TEST_F(ObsTest, SpanHistogramReceivesDuration) {
  Registry reg;
  Histogram& hist = reg.histogram("test.span_us");
  obs::enable(true);
  { obs::Span span("test.hist", "test", &hist); }
  obs::enable(false);
  EXPECT_EQ(hist.count(), 1u);
}

TEST_F(ObsTest, StreamingWritesThroughAndRetainsNothing) {
  // Satellite: the bounded-memory streaming mode. Events recorded while a
  // sink is attached go straight to disk and are NOT retained in memory —
  // the property that keeps a metro-scale day's trace memory flat.
  obs::enable(true);
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  const std::string path = ::testing::TempDir() + "peace_stream_test.jsonl";
  ASSERT_TRUE(tracer.stream_to(path));
  EXPECT_TRUE(tracer.streaming());
  for (std::uint64_t i = 0; i < 10; ++i)
    tracer.instant_at("test.stream", "test", 1000 + i, {{"i", i}});
  EXPECT_EQ(tracer.streamed_event_count(), 10u);
  EXPECT_EQ(tracer.event_count(), 0u);  // nothing retained
  ASSERT_TRUE(tracer.stop_streaming());
  EXPECT_FALSE(tracer.streaming());
  // After the sink detaches, recording retains in memory again.
  tracer.instant_at("test.retained", "test", 2000, {});
  EXPECT_EQ(tracer.event_count(), 1u);

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content(1 << 16, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), f));
  std::fclose(f);
  std::size_t lines = 0;
  for (const char c : content) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 10u);
  EXPECT_NE(content.find("\"name\": \"test.stream\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, StreamSinkRotatesAtFlushBoundaries) {
  // Rotation contract (stream_sink.hpp): completed files become
  // "<path>.<n>", <path> is always the newest data, and lines never split
  // across files.
  const std::string path = ::testing::TempDir() + "peace_rotate_test.jsonl";
  obs::StreamSinkOptions options;
  options.flush_bytes = 64;    // flush almost every line
  options.rotate_bytes = 256;  // rotate every few lines
  obs::JsonlStreamSink sink;
  ASSERT_TRUE(sink.open(path, options));
  obs::TraceEvent e;
  e.name = "test.rotate";
  e.cat = "test";
  e.ph = 'i';
  for (int i = 0; i < 40; ++i) {
    e.ts_us = static_cast<std::uint64_t>(i);
    sink.write(e);
  }
  ASSERT_TRUE(sink.close());
  EXPECT_EQ(sink.events_written(), 40u);
  EXPECT_GE(sink.rotations(), 1u);

  // Every segment (rotated + current) holds only whole lines; together
  // they hold all 40 events.
  std::size_t total_lines = 0;
  std::vector<std::string> files;
  for (std::uint64_t n = 1; n <= sink.rotations(); ++n)
    files.push_back(path + "." + std::to_string(n));
  files.push_back(path);
  for (const std::string& file : files) {
    std::FILE* f = std::fopen(file.c_str(), "rb");
    ASSERT_NE(f, nullptr) << file;
    std::string content(1 << 16, '\0');
    content.resize(std::fread(content.data(), 1, content.size(), f));
    std::fclose(f);
    if (!content.empty()) {
      EXPECT_EQ(content.back(), '\n') << file;
    }
    for (const char c : content) total_lines += c == '\n' ? 1 : 0;
    std::remove(file.c_str());
  }
  EXPECT_EQ(total_lines, 40u);
}

#endif  // PEACE_OBS_DISABLED

TEST_F(ObsTest, StatsAbsorptionIsIdempotent) {
  proto::RouterStats stats;
  stats.accepted = 3;
  stats.requests_received = 5;
  proto::absorb_router_stats(stats);
  proto::absorb_router_stats(stats);  // set(), not add(): publish twice
  EXPECT_EQ(Registry::global().counter("router.accepted").value(), 3u);
  EXPECT_EQ(Registry::global().counter("router.requests_received").value(),
            5u);
  proto::RouterStats more = proto::sum(stats, stats);
  EXPECT_EQ(more.accepted, 6u);
  proto::absorb_router_stats(more);
  EXPECT_EQ(Registry::global().counter("router.accepted").value(), 6u);
}

TEST_F(ObsTest, PooledAndSequentialCountersMatch) {
  // The deterministic-counter contract: the same batch of peer hellos
  // verified sequentially and through a 4-thread VerifyPool performs the
  // same crypto work, so the curve.* registry deltas are identical.
  constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;
  proto::NetworkOperator no(crypto::Drbg::from_string("obs-pool-no"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm = no.register_group("obs-pool-g", 8, ttp);
  auto provision = no.provision_router(1, kFarFuture);
  proto::MeshRouter router(1, provision.keypair, provision.certificate,
                           no.params(),
                           crypto::Drbg::from_string("obs-pool-router"));
  router.install_revocation_lists(no.current_crl(), no.current_url());
  const proto::BeaconMessage beacon = router.make_beacon(1000);

  std::map<std::string, proto::GroupManager::Enrollment> enrollments;
  const auto make_user = [&](const std::string& uid, unsigned threads) {
    proto::ProtocolConfig config;
    config.verify_threads = threads;
    auto user = std::make_unique<proto::User>(
        uid, no.params(), crypto::Drbg::from_string(uid), config);
    if (enrollments.find(uid) == enrollments.end())
      enrollments.emplace(uid, gm.enroll(uid, ttp));
    user->complete_enrollment(enrollments.at(uid));
    return user;
  };

  // Identical hello batches for both runs: same sender uids => same DRBG
  // streams => byte-identical hellos.
  const auto make_hellos = [&] {
    std::vector<proto::PeerHello> hellos;
    for (int i = 0; i < 3; ++i) {
      auto sender = make_user("obs-sender" + std::to_string(i), 1);
      hellos.push_back(sender->make_peer_hello(beacon.g, 1000 + i));
    }
    return hellos;
  };

  const auto run = [&](unsigned threads) {
    auto responder = make_user("obs-responder", threads);
    EXPECT_TRUE(responder->process_beacon(beacon, 1000).has_value());
    const auto hellos = make_hellos();
    Registry::global().reset();
    auto replies = responder->process_peer_hellos(hellos, 1010);
    std::size_t answered = 0;
    for (const auto& r : replies) answered += r.has_value() ? 1 : 0;
    auto& reg = Registry::global();
    return std::tuple{answered,
                      reg.counter("curve.pairings").value(),
                      reg.counter("curve.miller_loops").value(),
                      reg.counter("curve.final_exps").value(),
                      reg.counter("curve.g2_prepared_builds").value(),
                      reg.counter("curve.msm_calls").value(),
                      reg.counter("curve.msm_terms").value()};
  };

  const auto seq = run(1);
  const auto pooled = run(4);
  EXPECT_EQ(std::get<0>(seq), 3u);
  EXPECT_EQ(seq, pooled);
}

#ifndef PEACE_OBS_DISABLED

TEST_F(ObsTest, SecEventStreamBoundedUnderBurst) {
  // Bounded-memory contract (sec_event.hpp): a sustained burst beyond the
  // ring capacity sheds the overflow into sec.events_shed instead of
  // growing; the always-on per-kind counter still counts every emission.
  obs::enable(true);
  obs::drain_sec_events();  // start from an empty ring
  const std::uint64_t count_before =
      obs::sec_event_count(obs::SecEventKind::kAuthReject);
  const std::uint64_t shed_before = obs::sec_events_shed();

  const std::size_t burst = obs::kSecRingCapacity + 300;
  for (std::size_t i = 0; i < burst; ++i)
    obs::sec_emit(obs::SecEventKind::kAuthReject, 1000 + i, 1, 2);

  EXPECT_EQ(obs::sec_event_count(obs::SecEventKind::kAuthReject),
            count_before + burst);
  EXPECT_EQ(obs::sec_events_shed(), shed_before + 300);

  std::vector<obs::SecEvent> drained;
  obs::drain_sec_events(&drained);
  EXPECT_EQ(drained.size(), obs::kSecRingCapacity);
  // Shed-newest: the ring keeps the oldest events of the burst.
  ASSERT_FALSE(drained.empty());
  EXPECT_EQ(drained.front().sim_ms, 1000u);
  EXPECT_EQ(drained.back().sim_ms, 1000u + obs::kSecRingCapacity - 1);
}

TEST_F(ObsTest, SecEventsIgnoredWhenRuntimeDisabled) {
  // Runtime toggle off: the per-kind counter still counts (always-on
  // substrate), but no record reaches the ring — drain finds nothing.
  obs::enable(true);
  obs::drain_sec_events();
  obs::enable(false);
  const std::uint64_t before =
      obs::sec_event_count(obs::SecEventKind::kSessionRekey);
  obs::sec_emit(obs::SecEventKind::kSessionRekey, 5000, 9);
  EXPECT_EQ(obs::sec_event_count(obs::SecEventKind::kSessionRekey),
            before + 1);
  obs::enable(true);
  std::vector<obs::SecEvent> drained;
  obs::drain_sec_events(&drained);
  EXPECT_TRUE(drained.empty());
}

TEST_F(ObsTest, StreamRotationNeverSplitsSecEventLines) {
  // Satellite: security events drain through the same rotating JSONL sink
  // as every trace record. Rotation mid-burst must never split a line
  // across segment files, and every line must be standalone-parseable.
  obs::enable(true);
  obs::drain_sec_events();  // don't let earlier tests' events leak in
  obs::Tracer& tracer = obs::Tracer::global();
  const std::string path =
      ::testing::TempDir() + "peace_sec_rotate_test.jsonl";
  obs::StreamSinkOptions options;
  options.flush_bytes = 64;
  options.rotate_bytes = 512;  // rotate mid-burst, repeatedly
  ASSERT_TRUE(tracer.stream_to(path, options));
  for (int i = 0; i < 64; ++i)
    obs::sec_emit(obs::SecEventKind::kReplayDetected, 2000 + i, 3, 1);
  obs::drain_sec_events();
  const std::uint64_t streamed = tracer.streamed_event_count();
  ASSERT_TRUE(tracer.stop_streaming());
  EXPECT_GE(streamed, 64u);

  std::size_t total_lines = 0, sec_lines = 0;
  bool any_rotated = false;
  for (std::uint64_t n = 1;; ++n) {
    const std::string file = path + "." + std::to_string(n);
    std::FILE* probe = std::fopen(file.c_str(), "rb");
    if (probe == nullptr) break;
    std::fclose(probe);
    any_rotated = true;
  }
  EXPECT_TRUE(any_rotated);
  std::vector<std::string> files;
  for (std::uint64_t n = 1;; ++n) {
    const std::string file = path + "." + std::to_string(n);
    std::FILE* probe = std::fopen(file.c_str(), "rb");
    if (probe == nullptr) break;
    std::fclose(probe);
    files.push_back(file);
  }
  files.push_back(path);
  for (const std::string& file : files) {
    std::FILE* f = std::fopen(file.c_str(), "rb");
    ASSERT_NE(f, nullptr) << file;
    std::string content(1 << 16, '\0');
    content.resize(std::fread(content.data(), 1, content.size(), f));
    std::fclose(f);
    if (!content.empty()) EXPECT_EQ(content.back(), '\n') << file;
    // Whole lines only: each is one complete {...} JSON object.
    std::size_t start = 0;
    while (start < content.size()) {
      const std::size_t nl = content.find('\n', start);
      ASSERT_NE(nl, std::string::npos) << file << ": trailing partial line";
      const std::string line = content.substr(start, nl - start);
      EXPECT_EQ(line.front(), '{') << file;
      EXPECT_EQ(line.back(), '}') << file;
      ++total_lines;
      if (line.find("\"cat\": \"sec\"") != std::string::npos) ++sec_lines;
      start = nl + 1;
    }
    std::remove(file.c_str());
  }
  EXPECT_EQ(total_lines, streamed);
  EXPECT_EQ(sec_lines, 64u);
}

#endif  // PEACE_OBS_DISABLED

TEST_F(ObsTest, PooledAndSequentialSecEventCountsMatch) {
  // The event-count half of telemetry neutrality: one mixed M.2 batch —
  // good, forged, revoked, stale — produces identical per-kind sec.*
  // counter deltas whether the router verifies sequentially or on a
  // 4-thread pool, because emissions happen only in the sequential
  // precheck/apply passes.
  constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;
  proto::NetworkOperator no(crypto::Drbg::from_string("sec-pool-no"));
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm = no.register_group("sec-pool-g", 8, ttp);
  const auto revoked_cred = gm.enroll("sec-mole", ttp);
  no.revoke_user_key(revoked_cred.index, 500);

  std::map<std::string, proto::GroupManager::Enrollment> enrollments;
  enrollments.emplace("sec-mole", revoked_cred);
  const auto make_user = [&](const std::string& uid) {
    auto user = std::make_unique<proto::User>(
        uid, no.params(), crypto::Drbg::from_string(uid));
    if (enrollments.find(uid) == enrollments.end())
      enrollments.emplace(uid, gm.enroll(uid, ttp));
    user->complete_enrollment(enrollments.at(uid));
    return user;
  };

  const auto run = [&](unsigned threads) {
    proto::ProtocolConfig config;
    config.verify_threads = threads;
    const auto provision = no.provision_router(1, kFarFuture);
    proto::MeshRouter router(1, provision.keypair, provision.certificate,
                             no.params(),
                             crypto::Drbg::from_string("sec-pool-router"),
                             config);
    router.install_revocation_lists(no.current_crl(), no.current_url());
    const proto::BeaconMessage beacon = router.make_beacon(1000);

    std::vector<proto::AccessRequest> batch;
    for (int i = 0; i < 2; ++i) {
      auto good = make_user("sec-good" + std::to_string(i));
      batch.push_back(*good->process_beacon(beacon, 1000));
    }
    auto forger = make_user("sec-forger");
    for (int i = 0; i < 2; ++i) {
      auto m2 = *forger->process_beacon(beacon, 1000);
      m2.ts2 += 1;  // signature no longer covers the message
      batch.push_back(std::move(m2));
    }
    auto mole = make_user("sec-mole");
    batch.push_back(*mole->process_beacon(beacon, 1000));
    auto late = make_user("sec-late");
    batch.push_back(*late->process_beacon(beacon, 1000));
    // Far outside replay_window_ms: pass 1 rejects on freshness before any
    // signature work, so this never reaches the batch verifier.
    batch.back().ts2 = 20'000;

    std::array<std::uint64_t, obs::kSecEventKindCount> before{};
    for (std::size_t k = 0; k < obs::kSecEventKindCount; ++k)
      before[k] = obs::sec_event_count(static_cast<obs::SecEventKind>(k));
    (void)router.handle_access_requests(batch, 1010);
    std::array<std::uint64_t, obs::kSecEventKindCount> delta{};
    for (std::size_t k = 0; k < obs::kSecEventKindCount; ++k)
      delta[k] = obs::sec_event_count(static_cast<obs::SecEventKind>(k)) -
                 before[k];
    return delta;
  };

  const auto seq = run(1);
  const auto pooled = run(4);
  EXPECT_EQ(seq, pooled);
  using K = obs::SecEventKind;
  EXPECT_EQ(seq[static_cast<std::size_t>(K::kAuthReject)], 3u);  // 2 forged
                                                                 // + 1 stale
  EXPECT_EQ(seq[static_cast<std::size_t>(K::kBatchForgeryAttributed)], 2u);
  EXPECT_EQ(seq[static_cast<std::size_t>(K::kRevocationHit)], 1u);
}

}  // namespace
}  // namespace peace
