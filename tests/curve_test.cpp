// Group laws and serialization for G1 and G2.
#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "curve/bn254.hpp"
#include "curve/ecdsa.hpp"

namespace peace::curve {
namespace {

using math::U256;

class CurveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { Bn254::init(); }
  crypto::Drbg rng_ = crypto::Drbg::from_string("curve-test");

  G1 rand_g1() { return Bn254::get().g1_gen * random_fr(rng_); }
  G2 rand_g2() { return Bn254::get().g2_gen * random_fr(rng_); }
};

TEST_F(CurveTest, GeneratorsOnCurve) {
  EXPECT_TRUE(Bn254::get().g1_gen.is_on_curve());
  EXPECT_TRUE(Bn254::get().g2_gen.is_on_curve());
}

TEST_F(CurveTest, GeneratorOrderR) {
  EXPECT_TRUE((Bn254::get().g1_gen * Bn254::get().r).is_infinity());
  EXPECT_TRUE((Bn254::get().g2_gen * Bn254::get().r).is_infinity());
  EXPECT_FALSE(Bn254::get().g1_gen.is_infinity());
}

TEST_F(CurveTest, InfinityIsIdentity) {
  const G1 p = rand_g1();
  EXPECT_EQ(p + G1::infinity(), p);
  EXPECT_EQ(G1::infinity() + p, p);
  EXPECT_TRUE((p - p).is_infinity());
  EXPECT_TRUE(G1::infinity().is_on_curve());
  EXPECT_TRUE((G1::infinity() * U256(12345)).is_infinity());
}

TEST_F(CurveTest, AdditionCommutesAndAssociates) {
  const G1 a = rand_g1(), b = rand_g1(), c = rand_g1();
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  const G2 x = rand_g2(), y = rand_g2(), z = rand_g2();
  EXPECT_EQ(x + y, y + x);
  EXPECT_EQ((x + y) + z, x + (y + z));
}

TEST_F(CurveTest, DoubleEqualsAddSelf) {
  const G1 a = rand_g1();
  EXPECT_EQ(a.dbl(), a + a);
  EXPECT_EQ(a.dbl(), a * U256(2));
  const G2 b = rand_g2();
  EXPECT_EQ(b.dbl(), b + b);
}

TEST_F(CurveTest, ScalarMulDistributes) {
  const G1 p = rand_g1();
  const Fr a = random_fr(rng_), b = random_fr(rng_);
  EXPECT_EQ(p * (a + b), p * a + p * b);
  EXPECT_EQ((p * a) * b, (p * b) * a);
}

TEST_F(CurveTest, ScalarMulSmall) {
  const G1 p = rand_g1();
  G1 acc = G1::infinity();
  for (int k = 0; k <= 10; ++k) {
    EXPECT_EQ(p * U256(static_cast<std::uint64_t>(k)), acc) << k;
    acc = acc + p;
  }
}

TEST_F(CurveTest, WindowedMatchesDoubleAndAdd) {
  // The production windowed path against the textbook oracle, across edge
  // scalars and random full-width scalars, in both groups.
  const G1 p = rand_g1();
  const G2 q = rand_g2();
  std::vector<U256> scalars = {U256::zero(), U256::one(), U256(2), U256(15),
                               U256(16), U256(17), U256(0xffffffffffffffffull)};
  U256 rm1;
  math::sub_borrow(rm1, Bn254::get().r, U256::one());
  scalars.push_back(rm1);  // r - 1
  for (int i = 0; i < 10; ++i) scalars.push_back(random_fr(rng_).to_u256());
  for (const U256& k : scalars) {
    EXPECT_EQ(p.mul_windowed(k), p.mul_double_and_add(k)) << k.to_dec();
    EXPECT_EQ(q.mul_windowed(k), q.mul_double_and_add(k)) << k.to_dec();
  }
}

TEST_F(CurveTest, NegationIsInverse) {
  const G2 q = rand_g2();
  EXPECT_TRUE((q + (-q)).is_infinity());
  EXPECT_EQ(-(-q), q);
}

TEST_F(CurveTest, ResultsStayOnCurve) {
  const G1 a = rand_g1(), b = rand_g1();
  EXPECT_TRUE((a + b).is_on_curve());
  EXPECT_TRUE(a.dbl().is_on_curve());
  EXPECT_TRUE((a * random_fr(rng_)).is_on_curve());
  const G2 x = rand_g2();
  EXPECT_TRUE((x + rand_g2()).is_on_curve());
  EXPECT_TRUE(x.dbl().is_on_curve());
}

TEST_F(CurveTest, AffineRoundTrip) {
  const G1 p = rand_g1();
  math::Fp ax, ay;
  p.to_affine(ax, ay);
  EXPECT_EQ(G1(ax, ay), p);
  EXPECT_THROW(G1::infinity().to_affine(ax, ay), Error);
  EXPECT_EQ(p.normalized(), p);
}

TEST_F(CurveTest, EqualityIsProjectiveInvariant) {
  const G1 p = rand_g1();
  const G1 doubled_then_halved = (p.dbl() + p) - p - p;  // = p via doubling
  EXPECT_EQ(doubled_then_halved, p);
  EXPECT_NE(p, p.dbl());
}

TEST_F(CurveTest, G1SerializationRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const G1 p = rand_g1();
    const Bytes b = g1_to_bytes(p);
    EXPECT_EQ(b.size(), kG1CompressedSize);
    EXPECT_EQ(g1_from_bytes(b), p);
  }
  EXPECT_TRUE(g1_from_bytes(g1_to_bytes(G1::infinity())).is_infinity());
}

TEST_F(CurveTest, G2SerializationRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    const G2 q = rand_g2();
    const Bytes b = g2_to_bytes(q);
    EXPECT_EQ(b.size(), kG2CompressedSize);
    EXPECT_EQ(g2_from_bytes(b), q);
  }
  EXPECT_TRUE(g2_from_bytes(g2_to_bytes(G2::infinity())).is_infinity());
}

TEST_F(CurveTest, SerializationRejectsGarbage) {
  EXPECT_THROW(g1_from_bytes(Bytes(10, 0)), Error);
  EXPECT_THROW(g1_from_bytes(Bytes(kG1CompressedSize, 0x55)), Error);
  Bytes bad(kG1CompressedSize, 0);
  bad[0] = 7;  // invalid flag
  EXPECT_THROW(g1_from_bytes(bad), Error);
  // x >= p must be rejected (non-canonical encodings break uniqueness).
  Bytes huge(kG1CompressedSize, 0xff);
  huge[0] = 2;
  EXPECT_THROW(g1_from_bytes(huge), Error);
  EXPECT_THROW(g2_from_bytes(Bytes(64, 0)), Error);
}

TEST_F(CurveTest, G2SubgroupCheckOnDeserialize) {
  // Construct an on-curve point NOT in the r-subgroup: multiply a random
  // curve point by r; if it is not infinity the original was outside.
  // Build one by using a curve point before cofactor clearing.
  crypto::Drbg rng = crypto::Drbg::from_string("subgroup");
  for (int tries = 0; tries < 50; ++tries) {
    const math::Fp2 x(math::Fp::from_bytes_reduce(rng.bytes(32)),
                      math::Fp::from_bytes_reduce(rng.bytes(32)));
    const math::Fp2 rhs = x.square() * x + G2Traits::b();
    math::Fp2 y;
    if (!rhs.sqrt(y)) continue;
    const G2 raw(x, y);
    if ((raw * Bn254::get().r).is_infinity()) continue;  // unlucky: in subgroup
    const Bytes enc = g2_to_bytes(raw);
    EXPECT_THROW(g2_from_bytes(enc), Error);
    return;
  }
  FAIL() << "could not build an out-of-subgroup point";
}

TEST_F(CurveTest, FrSerialization) {
  const Fr v = random_fr(rng_);
  EXPECT_EQ(fr_from_bytes(fr_to_bytes(v)), v);
  EXPECT_THROW(fr_from_bytes(Bytes(31, 0)), Error);
  EXPECT_THROW(fr_from_bytes(Bytes(32, 0xff)), Error);
}

TEST_F(CurveTest, CofactorTimesCurvePointInSubgroup) {
  // Any point of E'(Fp2) times (2p - r) lands in the order-r subgroup.
  crypto::Drbg rng = crypto::Drbg::from_string("cofactor");
  for (int tries = 0; tries < 50; ++tries) {
    const math::Fp2 x(math::Fp::from_bytes_reduce(rng.bytes(32)),
                      math::Fp::from_bytes_reduce(rng.bytes(32)));
    const math::Fp2 rhs = x.square() * x + G2Traits::b();
    math::Fp2 y;
    if (!rhs.sqrt(y)) continue;
    const G2 cleared = G2(x, y) * Bn254::get().g2_cofactor;
    EXPECT_TRUE((cleared * Bn254::get().r).is_infinity());
    return;
  }
  FAIL() << "no curve point found";
}

TEST_F(CurveTest, MultiScalarMulMatchesSeparateMuls) {
  // The interleaved Shamir ladder must return exactly the same group
  // element as the sum of individual windowed multiplications — the
  // prepared verifier's transcripts depend on it.
  for (int iter = 0; iter < 4; ++iter) {
    const std::array<G1, 3> pts = {rand_g1(), rand_g1(), rand_g1()};
    const std::array<U256, 3> ks = {random_fr(rng_).to_u256(),
                                    random_fr(rng_).to_u256(),
                                    random_fr(rng_).to_u256()};
    const G1 expect = pts[0] * ks[0] + pts[1] * ks[1] + pts[2] * ks[2];
    EXPECT_EQ((multi_scalar_mul<G1Traits, 3>(pts, ks)), expect);
    EXPECT_EQ(g1_to_bytes(multi_scalar_mul<G1Traits, 3>(pts, ks)),
              g1_to_bytes(expect));
  }
  // G2, short scalars, zero scalars, and identity terms.
  const std::array<G2, 2> qs = {rand_g2(), rand_g2()};
  const std::array<U256, 2> small = {U256(3), U256(0)};
  EXPECT_EQ((multi_scalar_mul<G2Traits, 2>(qs, small)), qs[0] * U256(3));
  const std::array<G1, 2> with_inf = {rand_g1(), G1::infinity()};
  const std::array<U256, 2> ks2 = {random_fr(rng_).to_u256(),
                                   random_fr(rng_).to_u256()};
  EXPECT_EQ((multi_scalar_mul<G1Traits, 2>(with_inf, ks2)),
            with_inf[0] * ks2[0]);
}

}  // namespace
}  // namespace peace::curve
