#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/gcm.hpp"

namespace peace::crypto {
namespace {

TEST(Aes128, SboxAnchors) {
  // Well-known S-box entries pin the computed table.
  const auto& box = Aes128::sbox();
  EXPECT_EQ(box[0x00], 0x63);
  EXPECT_EQ(box[0x01], 0x7c);
  EXPECT_EQ(box[0x53], 0xed);
  EXPECT_EQ(box[0xff], 0x16);
  // The S-box is a permutation.
  std::array<bool, 256> seen{};
  for (int i = 0; i < 256; ++i) seen[box[static_cast<std::size_t>(i)]] = true;
  for (int i = 0; i < 256; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

TEST(Aes128, Fips197Vector) {
  // FIPS 197 Appendix C.1.
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex({ct, 16}), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, KeySizeValidated) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), Error);
  EXPECT_THROW(Aes128(Bytes(17, 0)), Error);
}

TEST(Ghash, MultiplicationProperties) {
  // Commutativity and distributivity of the GF(2^128) product, plus the
  // zero annihilator — algebraic anchors independent of test vectors.
  std::array<std::uint8_t, 16> a{}, b{}, c{}, zero{};
  for (int i = 0; i < 16; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(17 * i + 3);
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(31 * i + 7);
    c[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(13 * i + 1);
  }
  EXPECT_EQ(ghash_multiply(a, b), ghash_multiply(b, a));
  EXPECT_EQ(ghash_multiply(a, zero), zero);
  // a*(b+c) == a*b + a*c (XOR is addition).
  std::array<std::uint8_t, 16> bc, left, sum;
  for (int i = 0; i < 16; ++i)
    bc[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)] ^
                                      c[static_cast<std::size_t>(i)];
  left = ghash_multiply(a, bc);
  const auto ab = ghash_multiply(a, b);
  const auto ac = ghash_multiply(a, c);
  for (int i = 0; i < 16; ++i)
    sum[static_cast<std::size_t>(i)] = ab[static_cast<std::size_t>(i)] ^
                                       ac[static_cast<std::size_t>(i)];
  EXPECT_EQ(left, sum);
}

TEST(AesGcm, NistTestCase1) {
  // SP 800-38D / McGrew-Viega test case 1: empty plaintext and AAD.
  const Bytes key(16, 0);
  const Bytes iv(12, 0);
  const Bytes sealed = aes_gcm_seal(key, iv, {}, {});
  EXPECT_EQ(to_hex(sealed), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, NistTestCase2) {
  // Test case 2: one zero block.
  const Bytes key(16, 0);
  const Bytes iv(12, 0);
  const Bytes pt(16, 0);
  const Bytes sealed = aes_gcm_seal(key, iv, {}, pt);
  EXPECT_EQ(to_hex(sealed),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(AesGcm, RoundTrip) {
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes iv = from_hex("cafebabefacedbaddecaf888");
  const Bytes sealed =
      aes_gcm_seal(key, iv, as_bytes("header"), as_bytes("payload body"));
  const auto opened = aes_gcm_open(key, iv, as_bytes("header"), sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("payload body"));
}

TEST(AesGcm, TamperAndWrongContextRejected) {
  const Bytes key(16, 0x42);
  const Bytes iv(12, 0x24);
  Bytes sealed = aes_gcm_seal(key, iv, as_bytes("a"), as_bytes("m"));
  Bytes t1 = sealed;
  t1[0] ^= 1;
  EXPECT_FALSE(aes_gcm_open(key, iv, as_bytes("a"), t1).has_value());
  Bytes t2 = sealed;
  t2.back() ^= 1;
  EXPECT_FALSE(aes_gcm_open(key, iv, as_bytes("a"), t2).has_value());
  EXPECT_FALSE(aes_gcm_open(key, iv, as_bytes("b"), sealed).has_value());
  EXPECT_FALSE(
      aes_gcm_open(Bytes(16, 0x43), iv, as_bytes("a"), sealed).has_value());
  EXPECT_FALSE(aes_gcm_open(key, iv, as_bytes("a"), Bytes(8, 0)).has_value());
}

TEST(AesGcm, NonBlockAlignedLengths) {
  const Bytes key(16, 7);
  const Bytes iv(12, 9);
  for (std::size_t n : {1u, 15u, 16u, 17u, 31u, 33u, 100u}) {
    Bytes pt(n);
    for (std::size_t i = 0; i < n; ++i) pt[i] = static_cast<std::uint8_t>(i);
    const Bytes sealed = aes_gcm_seal(key, iv, as_bytes("aad"), pt);
    EXPECT_EQ(sealed.size(), n + kGcmTagSize);
    const auto opened = aes_gcm_open(key, iv, as_bytes("aad"), sealed);
    ASSERT_TRUE(opened.has_value()) << n;
    EXPECT_EQ(*opened, pt) << n;
  }
}

TEST(AesGcm, NonceSizeValidated) {
  EXPECT_THROW(aes_gcm_seal(Bytes(16, 0), Bytes(11, 0), {}, {}), Error);
}

}  // namespace
}  // namespace peace::crypto
