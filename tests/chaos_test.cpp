// Chaos harness for the reliability layer (PROTOCOL.md §10): a metro
// segment lives through each fault class — burst loss, duplication,
// reordering, corruption, partitions, router crashes — and every reachable
// user must still end up holding an authenticated session, with pending
// state bounded and the pooled verifier bit-identical to the sequential
// one. Everything is driven by seeded DRBGs: same seed, same run.
#include "mesh/network.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

namespace peace::mesh {
namespace {

constexpr proto::Timestamp kFarFuture = 1000ull * 86400 * 365;

/// Gilbert–Elliott plan averaging ~30% loss in bursts: good state is
/// clean, bad state drops 3 of 4 frames, dwell ~2 frames bad / ~5 good.
FaultPlan burst_loss_plan() {
  FaultPlan plan;
  plan.loss_good = 0.0;
  plan.loss_bad = 0.75;
  plan.p_good_to_bad = 0.2;
  plan.p_bad_to_good = 0.3;
  return plan;
}

/// One self-contained metro segment: two routers with overlapping
/// coverage, a row of users inside it, idempotent resend on (the resend
/// caches are what make retransmission safe).
struct ChaosWorld {
  explicit ChaosWorld(const std::string& seed, unsigned verify_threads = 0,
                      ReliabilityConfig reliability = {})
      : no(crypto::Drbg::from_string(seed + "-no")),
        gm(no.register_group("metro", 32, ttp)),
        net(sim, crypto::Drbg::from_string(seed + "-net"), RadioConfig{},
            make_proto_config(verify_threads), reliability) {
    r1 = net.add_router({0, 0}, no, kFarFuture);
    r2 = net.add_router({300, 0}, no, kFarFuture);
    for (int i = 0; i < 8; ++i) {
      auto user = std::make_unique<proto::User>(
          "u" + std::to_string(i), no.params(),
          crypto::Drbg::from_string(seed + "-u" + std::to_string(i)),
          make_proto_config(verify_threads));
      user->complete_enrollment(gm.enroll(user->uid(), ttp));
      users.push_back(
          net.add_user({40.0 + 30.0 * i, (i % 2) ? 15.0 : -15.0},
                       std::move(user)));
    }
  }

  static proto::ProtocolConfig make_proto_config(unsigned verify_threads) {
    proto::ProtocolConfig config;
    config.idempotent_resend = true;
    config.verify_threads = verify_threads;
    // Chaos runs span minutes of sim time; handshake freshness must follow.
    config.replay_window_ms = 60'000;
    return config;
  }

  std::size_t connected_count() const {
    std::size_t n = 0;
    for (const NodeId u : users) n += net.is_connected(u) ? 1 : 0;
    return n;
  }

  /// Acceptance floor: ≥99% of reachable users hold a session. With eight
  /// users that rounds up to all of them.
  void expect_converged() {
    for (const NodeId u : users)
      EXPECT_TRUE(net.is_connected(u)) << "user node " << u;
  }

  void expect_pending_bounded() {
    const std::size_t cap = make_proto_config(0).pending_cap;
    for (const NodeId u : users) {
      EXPECT_LE(net.user(u).pending_access_size(), cap);
      EXPECT_LE(net.user(u).pending_peer_size(), cap);
      EXPECT_LE(net.user(u).resend_cache_size(), cap);
    }
  }

  proto::NetworkOperator no;
  proto::TrustedThirdParty ttp;
  proto::GroupManager gm;
  Simulator sim;
  MeshNetwork net;
  NodeId r1 = 0, r2 = 0;
  std::vector<NodeId> users;
};

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { curve::Bn254::init(); }
};

TEST_F(ChaosTest, ConvergesThroughBurstLoss) {
  ChaosWorld w("chaos-burst");
  w.net.set_fault_plan(burst_loss_plan());
  w.net.start_beaconing(100, 1000, 40'000);
  w.sim.run_until(60'000);

  w.expect_converged();
  w.expect_pending_bounded();
  // The ~30% burst loss must have actually bitten — and been healed by the
  // RTO retransmission layer, not by luck.
  EXPECT_GT(w.net.stats().frames_lost, 0u);
  EXPECT_GT(w.net.stats().retransmissions, 0u);
}

TEST_F(ChaosTest, DuplicationIsIdempotent) {
  ChaosWorld w("chaos-dup");
  FaultPlan plan;
  plan.duplicate_probability = 0.5;
  w.net.set_fault_plan(plan);
  w.net.start_beaconing(100, 1000, 10'000);
  w.sim.run_until(20'000);

  w.expect_converged();
  EXPECT_GT(w.net.stats().frames_duplicated, 0u);
  // Duplicated M.2s hit the routers' resend caches — never a second
  // session for the same handshake, never a protocol error.
  std::size_t sessions = 0, resent = 0;
  for (const NodeId r : {w.r1, w.r2}) {
    sessions += w.net.router(r).session_count();
    resent += w.net.router(r).stats().confirms_resent;
  }
  EXPECT_EQ(sessions, w.users.size());
  EXPECT_GT(resent, 0u);
  // Duplicated M.3s land on a consumed pending entry: a no-op.
  for (const NodeId u : w.users)
    EXPECT_EQ(w.net.user(u).stats().sessions_established, 1u);
}

TEST_F(ChaosTest, ReorderingTolerated) {
  ChaosWorld w("chaos-reorder");
  FaultPlan plan;
  plan.reorder_probability = 0.5;
  plan.reorder_max_jitter_ms = 50;
  w.net.set_fault_plan(plan);
  w.net.start_beaconing(100, 1000, 10'000);
  w.sim.run_until(20'000);

  w.expect_converged();
  EXPECT_GT(w.net.stats().frames_delayed, 0u);
}

TEST_F(ChaosTest, CorruptionRejectedCleanly) {
  ChaosWorld w("chaos-corrupt");
  FaultPlan plan;
  plan.corrupt_probability = 0.25;
  w.net.set_fault_plan(plan);
  w.net.start_beaconing(100, 1000, 40'000);
  w.sim.run_until(60'000);

  w.expect_converged();
  // Corrupted frames fail to parse or fail verification — counted, never
  // fatal, and retransmission recovers the handshake.
  EXPECT_GT(w.net.stats().corrupted_rejected, 0u);
  w.expect_pending_bounded();

  // Data under corruption: every send is either delivered intact or
  // accounted as undeliverable; AEAD makes corrupted-but-accepted
  // impossible, and nothing throws on the data path.
  const std::uint64_t delivered_before = w.net.stats().data_delivered;
  const std::uint64_t undeliverable_before = w.net.stats().data_undeliverable;
  std::uint64_t sent = 0, ok = 0;
  for (const NodeId u : w.users)
    for (int i = 0; i < 4; ++i) {
      ++sent;
      ok += w.net.send_data(u, as_bytes("x")) ? 1 : 0;
    }
  EXPECT_EQ(w.net.stats().data_delivered - delivered_before, ok);
  EXPECT_EQ(w.net.stats().data_delivered - delivered_before +
                (w.net.stats().data_undeliverable - undeliverable_before),
            sent);
  EXPECT_GT(w.net.stats().data_delivered, delivered_before);
}

TEST_F(ChaosTest, PartitionHealsAndTrafficResumes) {
  ChaosWorld w("chaos-part");
  w.net.start_beaconing(100, 1000, 30'000);
  w.sim.run_until(5000);
  w.expect_converged();

  // Users that reach their serving router directly — with no peer links
  // established, these are the ones whose data path the partition severs.
  std::vector<NodeId> direct;
  for (const NodeId u : w.users) {
    const auto serving = w.net.serving_router(u);
    ASSERT_TRUE(serving.has_value());
    if (distance(w.net.position(u),
                 w.net.position(static_cast<NodeId>(*serving))) <=
        RadioConfig{}.user_range)
      direct.push_back(u);
  }
  ASSERT_FALSE(direct.empty());

  // Partition each such user from its router: data stops dead.
  for (const NodeId u : direct)
    w.net.set_link_blocked(u, static_cast<NodeId>(*w.net.serving_router(u)),
                           true);
  const auto before = w.net.stats().frames_partitioned;
  for (const NodeId u : direct)
    EXPECT_FALSE(w.net.send_data(u, as_bytes("x")));
  EXPECT_EQ(w.net.stats().frames_partitioned, before + direct.size());

  // Heal: the sessions were never torn down, traffic flows again at once.
  for (const NodeId u : direct)
    w.net.set_link_blocked(u, static_cast<NodeId>(*w.net.serving_router(u)),
                           false);
  for (const NodeId u : direct)
    EXPECT_TRUE(w.net.send_data(u, as_bytes("y")));
}

TEST_F(ChaosTest, RouterCrashFailsOverAndRestartRejoins) {
  ChaosWorld w("chaos-crash");
  w.net.start_beaconing(100, 1000, 60'000);
  w.sim.run_until(5000);
  w.expect_converged();

  // Kill r1. Its users discover the outage on their next send, drop the
  // stale uplink, and the failover logic steers them to r2 (r1 is silent).
  w.net.crash_router(w.r1);
  ASSERT_TRUE(w.net.router_is_down(w.r1));
  EXPECT_THROW(w.net.router(w.r1), Error);
  for (const NodeId u : w.users) (void)w.net.send_data(u, as_bytes("probe"));
  w.sim.run_until(25'000);

  for (const NodeId u : w.users) {
    if (!w.net.is_connected(u)) continue;  // out of r2's coverage: excused
    EXPECT_EQ(w.net.serving_router(u), w.net.router(w.r2).id());
  }
  EXPECT_GT(w.net.stats().failovers, 0u);
  // Users beyond r2's range are unreachable while r1 is down — the ≥99%
  // floor applies to reachable users only. Restart brings r1 back with its
  // old identity and everyone reconverges.
  w.net.restart_router(w.r1);
  ASSERT_FALSE(w.net.router_is_down(w.r1));
  w.sim.run_until(60'000);
  w.expect_converged();
}

TEST_F(ChaosTest, RekeyOnFrameBudgetKeepsDataFlowing) {
  ReliabilityConfig reliability;
  reliability.rekey_after_frames = 3;
  reliability.drain_window_ms = 1500;
  ChaosWorld w("chaos-rekey", 0, reliability);
  w.net.start_beaconing(100, 500, 60'000);
  w.sim.run_until(3000);
  w.expect_converged();

  // Every send beyond the budget retires the uplink into its drain window
  // and rides the old session while the fresh handshake runs — data never
  // stops, the session id underneath changes.
  const NodeId u = w.users.front();
  std::uint64_t delivered = 0;
  for (int i = 0; i < 12; ++i) {
    delivered += w.net.send_data(u, as_bytes("stream")) ? 1 : 0;
    w.sim.run_until(w.sim.now() + 1000);
  }
  EXPECT_EQ(delivered, 12u);
  EXPECT_GE(w.net.stats().rekeys, 2u);
  EXPECT_TRUE(w.net.is_connected(u));
}

TEST_F(ChaosTest, ExplicitRekeyAndSeqExhaustionRecovery) {
  ChaosWorld w("chaos-exhaust");
  w.net.start_beaconing(100, 500, 30'000);
  w.sim.run_until(3000);
  w.expect_converged();
  const NodeId u = w.users.front();

  // Forced rekey: one retired session, fresh handshake at the next beacon.
  w.net.rekey(u);
  EXPECT_EQ(w.net.stats().rekeys, 1u);
  EXPECT_TRUE(w.net.send_data(u, as_bytes("on the old session")));  // drains
  w.sim.run_until(10'000);
  EXPECT_TRUE(w.net.is_connected(u));
  EXPECT_TRUE(w.net.send_data(u, as_bytes("on the new session")));
  EXPECT_THROW(w.net.rekey(999'999), Error);
}

TEST_F(ChaosTest, DeterministicUnderSameSeed) {
  auto run = [](const std::string& seed, obs::HealthMonitor* monitor = nullptr) {
    ChaosWorld w(seed);
    w.net.set_fault_plan(burst_loss_plan());
    w.net.start_beaconing(100, 1000, 20'000);
    if (monitor != nullptr) {
      // Drive the monitor the way the metro barrier loop does: run in
      // chunks, drain the security-event stream into it, evaluate. The
      // monitor is a pure consumer, so arming it must not perturb the run.
      for (SimTime t = 1000; t <= 30'000; t += 1000) {
        w.sim.run_until(t);
        std::vector<obs::SecEvent> drained;
        obs::drain_sec_events(&drained);
        for (const obs::SecEvent& e : drained) monitor->ingest(e);
        monitor->tick(t);
      }
    } else {
      w.sim.run_until(30'000);
    }
    for (const NodeId u : w.users) (void)w.net.send_data(u, as_bytes("d"));
    return w.net.stats();
  };
  const NetworkStats a = run("chaos-det");
  const NetworkStats b = run("chaos-det");
  EXPECT_EQ(a.frames_transmitted, b.frames_transmitted);
  EXPECT_EQ(a.frames_lost, b.frames_lost);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.handshake_timeouts, b.handshake_timeouts);
  EXPECT_EQ(a.data_delivered, b.data_delivered);
  EXPECT_EQ(a.corrupted_rejected, b.corrupted_rejected);

  // Telemetry neutrality under faults: the same chaotic run with span
  // tracing enabled is bit-identical on every deterministic observable.
  obs::enable(true);
  const NetworkStats c = run("chaos-det");
  obs::enable(false);
  obs::Tracer::global().clear();
  EXPECT_EQ(a.frames_transmitted, c.frames_transmitted);
  EXPECT_EQ(a.frames_lost, c.frames_lost);
  EXPECT_EQ(a.retransmissions, c.retransmissions);
  EXPECT_EQ(a.handshake_timeouts, c.handshake_timeouts);
  EXPECT_EQ(a.data_delivered, c.data_delivered);
  EXPECT_EQ(a.corrupted_rejected, c.corrupted_rejected);

  // And again with a HealthMonitor armed on the security-event stream:
  // live anomaly detection over the same chaotic run changes nothing.
  obs::enable(true);
  obs::HealthMonitor monitor;
  const NetworkStats d = run("chaos-det", &monitor);
  obs::enable(false);
  obs::Tracer::global().clear();
  EXPECT_EQ(a.frames_transmitted, d.frames_transmitted);
  EXPECT_EQ(a.frames_lost, d.frames_lost);
  EXPECT_EQ(a.retransmissions, d.retransmissions);
  EXPECT_EQ(a.handshake_timeouts, d.handshake_timeouts);
  EXPECT_EQ(a.data_delivered, d.data_delivered);
  EXPECT_EQ(a.corrupted_rejected, d.corrupted_rejected);
#ifndef PEACE_OBS_DISABLED
  // Bursty loss forces handshake retries; each timeout rides the stream
  // and must have reached the monitor.
  if (a.handshake_timeouts > 0) {
    EXPECT_GT(monitor.events_ingested(), 0u);
  }
#endif
}

TEST_F(ChaosTest, PooledVerifierMatchesSequentialUnderFaults) {
  auto run = [](unsigned verify_threads) {
    ChaosWorld w("chaos-pool", verify_threads);
    FaultPlan plan = burst_loss_plan();
    plan.duplicate_probability = 0.2;
    plan.corrupt_probability = 0.1;
    w.net.set_fault_plan(plan);
    w.net.start_beaconing(100, 1000, 20'000);
    w.sim.run_until(30'000);
    std::vector<bool> connected;
    for (const NodeId u : w.users) connected.push_back(w.net.is_connected(u));
    return std::make_pair(w.net.stats(), connected);
  };
  const auto [seq_stats, seq_conn] = run(0);
  const auto [pool_stats, pool_conn] = run(4);
  // Bit-identity: the pool only parallelises signature checks inside the
  // sequential batch protocol, so every observable matches exactly.
  EXPECT_EQ(seq_conn, pool_conn);
  EXPECT_EQ(seq_stats.frames_transmitted, pool_stats.frames_transmitted);
  EXPECT_EQ(seq_stats.frames_lost, pool_stats.frames_lost);
  EXPECT_EQ(seq_stats.retransmissions, pool_stats.retransmissions);
  EXPECT_EQ(seq_stats.handshake_timeouts, pool_stats.handshake_timeouts);
  EXPECT_EQ(seq_stats.corrupted_rejected, pool_stats.corrupted_rejected);
  EXPECT_EQ(seq_stats.frames_duplicated, pool_stats.frames_duplicated);
}

TEST_F(ChaosTest, PeerLinksSurviveLossyHandshakes) {
  ChaosWorld w("chaos-peer");
  w.net.set_fault_plan(burst_loss_plan());
  w.net.start_beaconing(100, 1000, 20'000);
  w.sim.run_until(25'000);
  w.expect_converged();

  // Peer handshakes ride the same faulty radio; the M~.1/M~.2 timers and
  // the M~.3-from-cache recovery must still converge every adjacent pair.
  // A second discovery round retries any pair whose retry budget ran out
  // (establish_peer_links skips pairs already established or in flight).
  w.net.establish_peer_links();
  w.sim.run_until(60'000);
  w.net.establish_peer_links();
  w.sim.run_until(90'000);
  // Adjacent users are 30–34m apart (< 80m user radio): the relay chain
  // must work end to end, which proves the peer sessions exist.
  w.net.set_fault_plan(FaultPlan{});  // quiesce the radio for the probe
  std::uint64_t ok = 0;
  for (const NodeId u : w.users) ok += w.net.send_data(u, as_bytes("relay"));
  EXPECT_EQ(ok, w.users.size());
  w.expect_pending_bounded();
}

}  // namespace
}  // namespace peace::mesh
